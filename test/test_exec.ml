(* Tests for the scenario API and the multicore sweep executor:
   scenarios must reproduce hand-built Runner.run results bit for bit,
   and a sweep must be order-preserving and independent of the worker
   domain count. *)

module Units = Pdq_engine.Units
module Sim = Pdq_engine.Sim
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Config = Pdq_core.Config
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep

(* Everything in a result except the live context, for structural
   comparison across independently built simulations. *)
let fingerprint (r : Runner.result) =
  ( ( Array.to_list
        (Array.map
           (fun (f : Runner.flow_result) ->
             (f.Runner.spec, f.Runner.fct, f.Runner.met_deadline,
              f.Runner.terminated, f.Runner.aborted))
           r.Runner.flows),
      r.Runner.application_throughput,
      r.Runner.mean_fct ),
    (r.Runner.completed, r.Runner.aborted, r.Runner.counters, r.Runner.sim_end)
  )

let check_same_result msg a b =
  Alcotest.(check bool) msg true (fingerprint a = fingerprint b)

(* ------------------------------------------------------------------ *)
(* Scenario.run vs. a hand-built Runner.run *)

let synthetic_scenario proto =
  Scenario.make ~seed:3 ~horizon:5.
    ~workload:
      (Scenario.Synthetic
         {
           pattern = Scenario.Aggregation;
           flows = 8;
           sizes = Scenario.Uniform_paper { mean_bytes = 100_000 };
           deadlines = Scenario.Exp_deadlines { mean = 0.02; floor = 3e-3 };
         })
    proto

let test_scenario_matches_handbuilt () =
  (* The scenario expands to concrete specs + options; running those
     through Runner.run on a fresh hand-built topology must reproduce
     Scenario.run exactly. *)
  let s = synthetic_scenario (Runner.Pdq Config.full) in
  let from_scenario = Scenario.run s in
  let _, specs, options = Scenario.build s in
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let by_hand =
    Runner.run ~options ~topo:built.Builder.topo s.Scenario.protocol specs
  in
  check_same_result "scenario = hand-built" from_scenario by_hand

let test_explicit_matches_handbuilt () =
  let specs_of hosts rx =
    [
      { Context.src = hosts.(0); dst = rx; size = Units.mbyte 1.;
        deadline = None; start = 0. };
      { Context.src = hosts.(1); dst = rx; size = Units.kbyte 100.;
        deadline = None; start = 0. };
    ]
  in
  let s =
    Scenario.make
      ~topo:(Scenario.Bottleneck { senders = 2 })
      ~workload:
        (Scenario.Generated
           {
             label = "two flows";
             specs =
               (fun ~seed:_ ~topo:_ ~hosts ->
                 specs_of hosts hosts.(Array.length hosts - 1));
           })
      Runner.Rcp
  in
  let from_scenario = Scenario.run s in
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:2 () in
  let by_hand =
    Runner.run ~topo:built.Builder.topo Runner.Rcp
      (specs_of built.Builder.hosts rx)
  in
  check_same_result "generated bottleneck = hand-built" from_scenario by_hand

let test_rerun_deterministic () =
  let s = synthetic_scenario Runner.Tcp in
  check_same_result "same scenario twice" (Scenario.run s) (Scenario.run s)

(* ------------------------------------------------------------------ *)
(* Sweep: parallel = sequential, in input order *)

let mixed_scenarios =
  List.concat_map
    (fun proto ->
      List.map
        (fun seed -> Scenario.with_seed (synthetic_scenario proto) seed)
        [ 1; 2 ])
    [ Runner.Pdq Config.full; Runner.Rcp; Runner.Tcp ]

let test_sweep_matches_sequential () =
  let seq = Sweep.run ~jobs:1 mixed_scenarios in
  let par = Sweep.run ~jobs:4 mixed_scenarios in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "scenario %d identical" i) a b)
    (List.combine seq par)

let test_map_preserves_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "input order" (List.map (fun x -> x * x) xs)
    (Sweep.map ~jobs:5 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "more jobs than items" [ 9 ]
    (Sweep.map ~jobs:8 (fun x -> x * x) [ 3 ])

let test_map_propagates_exceptions () =
  match Sweep.map ~jobs:3 (fun x -> if x = 5 then failwith "boom" else x)
          (List.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "first error" "boom" m

let test_average_matches_manual () =
  let f seed = float_of_int (seed * seed) in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let manual =
    List.fold_left (fun acc s -> acc +. f s) 0. seeds
    /. float_of_int (List.length seeds)
  in
  Alcotest.(check (float 0.)) "jobs:1" manual (Sweep.average ~jobs:1 ~seeds f);
  Alcotest.(check (float 0.)) "jobs:4" manual (Sweep.average ~jobs:4 ~seeds f)

let test_sweep_with_profiler_enabled () =
  (* The global profiler must tolerate runs on worker domains: enable,
     sweep, report, reset — no crash, and the sweep output unchanged. *)
  let p = Pdq_engine.Profiler.enable_global () in
  let expected = Sweep.run ~jobs:1 mixed_scenarios in
  let got = Sweep.run ~jobs:4 mixed_scenarios in
  ignore (Format.asprintf "%a" Pdq_engine.Profiler.pp_report p);
  Pdq_engine.Profiler.reset p;
  Pdq_engine.Profiler.disable_global ();
  List.iteri
    (fun i (a, b) ->
      check_same_result (Printf.sprintf "profiled scenario %d" i) a b)
    (List.combine expected got)

(* ------------------------------------------------------------------ *)
(* CLI-facing parsers *)

let test_parsers () =
  (match Scenario.protocol_of_string "pdq" with
  | Ok (Runner.Pdq _) -> ()
  | _ -> Alcotest.fail "pdq should parse");
  (match Scenario.protocol_of_string ~subflows:4 "mpdq" with
  | Ok (Runner.Mpdq { subflows = 4; _ }) -> ()
  | _ -> Alcotest.fail "mpdq should parse with subflows");
  (match Scenario.protocol_of_string "nosuch" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad protocol must be an Error");
  (match Scenario.topo_of_string "fat-tree" with
  | Ok (Scenario.Fat_tree _) -> ()
  | _ -> Alcotest.fail "fat-tree should parse");
  (match Scenario.topo_of_string "moebius" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad topology must be an Error");
  (match Scenario.pattern_of_string "permutation" with
  | Ok Scenario.Random_permutation -> ()
  | _ -> Alcotest.fail "permutation should parse");
  (match Scenario.pattern_of_string "chaos" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad pattern must be an Error")

let suites =
  [
    ( "exec.scenario",
      [
        Alcotest.test_case "synthetic = hand-built" `Quick
          test_scenario_matches_handbuilt;
        Alcotest.test_case "generated = hand-built" `Quick
          test_explicit_matches_handbuilt;
        Alcotest.test_case "rerun deterministic" `Quick
          test_rerun_deterministic;
        Alcotest.test_case "parsers" `Quick test_parsers;
      ] );
    ( "exec.sweep",
      [
        Alcotest.test_case "jobs:4 = jobs:1 on mixed roster" `Quick
          test_sweep_matches_sequential;
        Alcotest.test_case "map preserves order" `Quick
          test_map_preserves_order;
        Alcotest.test_case "map propagates exceptions" `Quick
          test_map_propagates_exceptions;
        Alcotest.test_case "average = manual mean" `Quick
          test_average_matches_manual;
        Alcotest.test_case "profiler-safe" `Quick
          test_sweep_with_profiler_enabled;
      ] );
  ]
