(* Fault-injection subsystem: plan DSL determinism, switch soft-state
   flush/rebuild, and end-to-end resilience behavior of the runner. *)

module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Units = Pdq_engine.Units
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology
module Builder = Pdq_topo.Builder
module Fault_plan = Pdq_faults.Fault_plan
module Config = Pdq_core.Config
module Header = Pdq_core.Header
module Switch_port = Pdq_core.Switch_port
module Flow_list = Pdq_core.Flow_list
module Context = Pdq_transport.Context
module Runner = Pdq_transport.Runner

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

(* ------------------------------------------------------------------ *)
(* Plan DSL *)

let test_plan_generators_deterministic () =
  let build seed =
    let rng = Rng.create seed in
    let flaps =
      Fault_plan.link_flaps (Rng.split rng)
        ~links:[ (0, 1); (1, 2); (2, 3) ]
        ~mtbf:0.1 ~mttr:0.02 ~until:2.
    in
    let bursts =
      Fault_plan.loss_bursts (Rng.split rng)
        ~links:[ (0, 1) ]
        ~mean_interval:0.05 ~mean_duration:0.01 ~loss:0.5 ~until:2.
    in
    let reboots =
      Fault_plan.switch_reboots (Rng.split rng)
        ~switches:[ 1; 2; 3 ]
        ~mtbf:0.2 ~until:2.
    in
    Fault_plan.merge (Fault_plan.merge flaps bursts) reboots
  in
  let a = build 42 and b = build 42 and c = build 43 in
  Alcotest.(check bool) "nonempty" false (Fault_plan.is_empty a);
  Alcotest.(check bool) "same seed, identical trace" true
    (Fault_plan.events a = Fault_plan.events b);
  Alcotest.(check bool) "different seed, different trace" false
    (Fault_plan.events a = Fault_plan.events c)

let test_plan_of_events () =
  let p =
    Fault_plan.of_events
      [
        (0.3, Fault_plan.Link_up { a = 0; b = 1 });
        (0.1, Fault_plan.Link_down { a = 0; b = 1 });
        (0.2, Fault_plan.Switch_reboot 5);
      ]
  in
  (match Fault_plan.events p with
  | [ (t1, Fault_plan.Link_down _); (t2, Fault_plan.Switch_reboot 5);
      (t3, Fault_plan.Link_up _) ] ->
      Alcotest.(check bool) "sorted" true (t1 < t2 && t2 < t3)
  | _ -> Alcotest.fail "events not sorted by time");
  Alcotest.(check int) "length" 3 (Fault_plan.length p);
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Fault_plan.of_events: negative event time") (fun () ->
      ignore (Fault_plan.of_events [ (-1., Fault_plan.Switch_reboot 0) ]))

let test_plan_targets () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let cables = Fault_plan.switch_cables built.Builder.topo in
  let switches = Fault_plan.switches built.Builder.topo in
  (* Fig 2a: root + 4 ToRs, root-ToR cables only (host links excluded). *)
  Alcotest.(check int) "switch-switch cables" 4 (List.length cables);
  Alcotest.(check int) "switches" 5 (List.length switches)

(* ------------------------------------------------------------------ *)
(* Switch soft state: flush and header-driven rebuild *)

let test_port_flush_and_rebuild () =
  let gbps = Units.gbps 1. in
  let port =
    Switch_port.create ~config:Config.full ~switch_id:9 ~link_rate:gbps
      ~init_rtt:1.5e-4 ()
  in
  let h1 = Header.make ~rate:gbps ~expected_tx_time:1e-3 ~rtt:4e-4 () in
  Switch_port.process_forward port h1 ~flow_id:1 ~now:0.;
  Switch_port.process_reverse port h1 ~flow_id:1 ~now:1e-4;
  let h2 = Header.make ~rate:gbps ~expected_tx_time:10. ~rtt:4e-4 () in
  Switch_port.process_forward port h2 ~flow_id:2 ~now:2e-4;
  Alcotest.(check int) "two flows stored" 2
    (Flow_list.length (Switch_port.flow_list port));
  Alcotest.(check bool) "rtt estimate moved" false
    (feq 1.5e-4 (Switch_port.rtt_avg port));
  (* Crash-reboot. *)
  Switch_port.flush port;
  Alcotest.(check int) "flow list wiped" 0
    (Flow_list.length (Switch_port.flow_list port));
  Alcotest.(check int) "fallback wiped" 0 (Switch_port.fallback_flow_count port);
  Alcotest.(check bool) "rtt estimate reset" true
    (feq 1.5e-4 (Switch_port.rtt_avg port));
  (* The next traversing header rebuilds the state from scratch: the
     flow is stored again and accepted at full rate. *)
  let h1' = Header.make ~rate:gbps ~expected_tx_time:1e-3 ~rtt:4e-4 () in
  Switch_port.process_forward port h1' ~flow_id:1 ~now:3e-4;
  Alcotest.(check int) "rebuilt from header" 1
    (Flow_list.length (Switch_port.flow_list port));
  Alcotest.(check bool) "accepted after rebuild" true
    (h1'.Header.pause_by = None)

(* ------------------------------------------------------------------ *)
(* End-to-end: runner integration *)

let specs_cross_rack built ~flows ~size =
  (* Aggregation onto hosts.(0) from the other racks. *)
  let hosts = built.Builder.hosts in
  List.init flows (fun i ->
      {
        Context.src = hosts.(Array.length hosts - 1 - i);
        dst = hosts.(0);
        size;
        deadline = None;
        start = 0.;
      })

let run_tree ?faults ?(protocol = Runner.Pdq Config.full) ?(horizon = 3.)
    ~flows ~size () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let options =
    { Runner.default_options with Runner.seed = 1; horizon; faults }
  in
  ( Runner.execute ~options ~topo:built.Builder.topo protocol
      (specs_cross_rack built ~flows ~size),
    built )

(* The bit-for-bit acceptance criterion: an empty fault plan must not
   perturb the run in any way — not even an extra RNG split. *)
let test_empty_plan_bit_for_bit () =
  let fcts faults =
    let r, _ = run_tree ?faults ~flows:6 ~size:300_000 () in
    ( Array.map (fun (f : Runner.flow_result) -> f.Runner.fct) r.Runner.flows,
      r.Runner.sim_end,
      r.Runner.counters )
  in
  let f0, end0, c0 = fcts None in
  let f1, end1, c1 = fcts (Some Fault_plan.empty) in
  Alcotest.(check bool) "identical FCTs" true (f0 = f1);
  Alcotest.(check bool) "identical end time" true (end0 = end1);
  Alcotest.(check bool) "no counters in clean runs" true (c0 = [] && c1 = [])

(* A mid-transfer permanent failure of the aggregation cable: the tree
   has no alternate path, so the flow keeps its stale route, its
   packets die at the down link, and the watchdog reaches a terminal
   abort instead of hanging until the horizon. *)
let test_dead_path_aborts () =
  let check_proto protocol =
    let sim = Sim.create () in
    let built = Builder.single_rooted_tree ~sim () in
    let specs = specs_cross_rack built ~flows:1 ~size:2_000_000 in
    let dst_tor =
      (* The receiver's ToR-root cable; hosts.(0)'s neighbor switch. *)
      match Topology.links_from built.Builder.topo built.Builder.hosts.(0) with
      | (next, _) :: _ -> next
      | [] -> Alcotest.fail "host has no links"
    in
    let root =
      match
        List.filter
          (fun (a, b) -> a = dst_tor || b = dst_tor)
          (Fault_plan.switch_cables built.Builder.topo)
      with
      | (a, b) :: _ -> if a = dst_tor then b else a
      | [] -> Alcotest.fail "no root cable"
    in
    let faults =
      Fault_plan.of_events
        [ (0.004, Fault_plan.Link_down { a = dst_tor; b = root }) ]
    in
    let options =
      {
        Runner.default_options with
        Runner.seed = 1;
        horizon = 5.;
        faults = Some faults;
      }
    in
    let r = Runner.execute ~options ~topo:built.Builder.topo protocol specs in
    Alcotest.(check int)
      (Runner.protocol_name protocol ^ " aborted")
      1 r.Runner.aborted;
    Alcotest.(check int)
      (Runner.protocol_name protocol ^ " not completed")
      0 r.Runner.completed;
    Alcotest.(check bool)
      (Runner.protocol_name protocol ^ " run ends before horizon")
      true
      (r.Runner.sim_end < 5.);
    let count key = try List.assoc key r.Runner.counters with Not_found -> 0 in
    Alcotest.(check bool)
      (Runner.protocol_name protocol ^ " per-cause abort counted")
      true
      (count "abort.stall" + count "abort.syn" = 1);
    Alcotest.(check bool)
      (Runner.protocol_name protocol ^ " drops at the down link")
      true
      (count "drop.down" > 0)
  in
  check_proto (Runner.Pdq Config.full);
  check_proto Runner.Tcp;
  check_proto Runner.Rcp

(* Switch crash-reboots mid-transfer: every switch loses its scheduler
   state twice, yet all flows finish — the state is rebuilt from the
   scheduling headers of packets in flight (the paper's soft-state
   argument), not by any explicit resynchronization. *)
let test_switch_reboot_flows_resume () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let specs = specs_cross_rack built ~flows:6 ~size:500_000 in
  let reboot_all t =
    List.map
      (fun n -> (t, Fault_plan.Switch_reboot n))
      (Fault_plan.switches built.Builder.topo)
  in
  let faults = Fault_plan.of_events (reboot_all 0.002 @ reboot_all 0.006) in
  let options =
    {
      Runner.default_options with
      Runner.seed = 1;
      horizon = 5.;
      faults = Some faults;
    }
  in
  let r =
    Runner.execute ~options ~topo:built.Builder.topo (Runner.Pdq Config.full) specs
  in
  Alcotest.(check int) "all flows complete" 6 r.Runner.completed;
  Alcotest.(check int) "no aborts" 0 r.Runner.aborted;
  Alcotest.(check bool) "no hang (ends before horizon)" true
    (r.Runner.sim_end < 5.);
  Alcotest.(check int) "reboots counted" 10
    (try List.assoc "fault.switch_reboot" r.Runner.counters
     with Not_found -> 0)

(* Loss episode on the bottleneck: a 5 ms 100% black-out delays the
   transfer but retransmission machinery completes it. *)
let test_loss_burst_recovers () =
  let run faults =
    let sim = Sim.create () in
    let built, rx = Builder.single_bottleneck ~sim ~senders:4 () in
    let specs =
      [
        {
          Context.src = built.Builder.hosts.(0);
          dst = rx;
          size = 500_000;
          deadline = None;
          start = 0.;
        };
      ]
    in
    let options =
      { Runner.default_options with Runner.seed = 1; horizon = 3.; faults }
    in
    Runner.execute ~options ~topo:built.Builder.topo (Runner.Pdq Config.full) specs
  in
  let clean = run None in
  let bursty =
    run
      (Some
         (Fault_plan.of_events
            [
              ( 0.001,
                Fault_plan.Loss_burst
                  { a = 0; b = 1; loss = 1.0; duration = 0.005 } );
            ]))
  in
  Alcotest.(check int) "clean completes" 1 clean.Runner.completed;
  Alcotest.(check int) "bursty completes" 1 bursty.Runner.completed;
  Alcotest.(check bool) "burst delays the flow" true
    (bursty.Runner.mean_fct > clean.Runner.mean_fct +. 0.004);
  Alcotest.(check bool) "drops counted as loss" true
    (try List.assoc "drop.loss" bursty.Runner.counters > 0
     with Not_found -> false)

(* Fat-tree under heavy flapping: ECMP re-pinning routes around
   outages; the run must stay exception-free, deterministic, and every
   flow must reach a terminal state (no hang). *)
let test_fat_tree_flapping_deterministic () =
  let run () =
    let sim = Sim.create () in
    let built = Builder.fat_tree ~sim ~k:4 () in
    let hosts = built.Builder.hosts in
    let specs =
      List.init 8 (fun i ->
          {
            Context.src = hosts.(Array.length hosts - 1 - i);
            dst = hosts.(0);
            size = 400_000;
            deadline = None;
            start = float_of_int i *. 0.002;
          })
    in
    let faults =
      Fault_plan.link_flaps (Rng.create 5)
        ~links:(Fault_plan.switch_cables built.Builder.topo)
        ~mtbf:0.08 ~mttr:0.02 ~until:0.5
    in
    let options =
      {
        Runner.default_options with
        Runner.seed = 1;
        horizon = 4.;
        faults = Some faults;
      }
    in
    Runner.execute ~options ~topo:built.Builder.topo (Runner.Pdq Config.full) specs
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "every flow reaches a terminal state" true
    (Array.for_all
       (fun (f : Runner.flow_result) ->
         f.Runner.fct <> None || f.Runner.terminated || f.Runner.aborted)
       a.Runner.flows);
  Alcotest.(check bool) "most flows survive rerouting" true
    (a.Runner.completed >= 6);
  Alcotest.(check bool) "deterministic (same seed, same result)" true
    (a.Runner.mean_fct = b.Runner.mean_fct
    && a.Runner.counters = b.Runner.counters
    && a.Runner.sim_end = b.Runner.sim_end)

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "generator determinism" `Quick
          test_plan_generators_deterministic;
        Alcotest.test_case "of_events ordering" `Quick test_plan_of_events;
        Alcotest.test_case "topology targets" `Quick test_plan_targets;
      ] );
    ( "faults.switch_state",
      [
        Alcotest.test_case "flush and header rebuild" `Quick
          test_port_flush_and_rebuild;
      ] );
    ( "faults.endtoend",
      [
        Alcotest.test_case "empty plan is bit-for-bit clean" `Quick
          test_empty_plan_bit_for_bit;
        Alcotest.test_case "dead path aborts with counters" `Quick
          test_dead_path_aborts;
        Alcotest.test_case "switch reboots: flows resume" `Quick
          test_switch_reboot_flows_resume;
        Alcotest.test_case "loss burst recovers" `Quick test_loss_burst_recovers;
        Alcotest.test_case "fat-tree flapping deterministic" `Quick
          test_fat_tree_flapping_deterministic;
      ] );
  ]
