(* Tests for pdq_forensics: span reconstruction from the typed event
   stream, exact FCT attribution, offline JSONL replay fidelity, trace
   diffing, and the event-json round trip the replay path rests on. *)

module Trace = Pdq_telemetry.Trace
module Metrics = Pdq_telemetry.Metrics
module Spans = Pdq_forensics.Spans
module Attribution = Pdq_forensics.Attribution
module Replay = Pdq_forensics.Replay
module Trace_diff = Pdq_forensics.Trace_diff
module Scenario = Pdq_exec.Scenario
module Sweep = Pdq_exec.Sweep
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Units = Pdq_engine.Units

let feq ?(eps = 1e-12) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_float msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let with_temp_file suffix f =
  let path = Filename.temp_file "pdq_forensics" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Hand-built two-flow preemption lifecycle: flow 1 (more critical)
   preempts flow 0, which later also loses a packet.  Every duration is
   chosen by hand so the attribution can be checked to the digit. *)

let admitted ?deadline ~t flow =
  (t, Trace.Flow_admitted { flow; src = flow + 1; dst = 9; size = 125_000; deadline })

let two_flow_events =
  [
    admitted ~t:0. 0;
    (0., Trace.Flow_started { flow = 0 });
    admitted ~deadline:0.01 ~t:0. 1;
    (0., Trace.Flow_started { flow = 1 });
    (1e-4, Trace.Flow_established { flow = 0 });
    (1e-4, Trace.Flow_rate_set { flow = 0; rate = 1e9 });
    (2e-4, Trace.Flow_established { flow = 1 });
    (2e-4, Trace.Flow_rate_set { flow = 1; rate = 1e9 });
    (3e-4, Trace.Flow_paused { flow = 0; by = 5; preempted_by = Some 1 });
    (12e-4, Trace.Flow_completed { flow = 1; fct = 12e-4 });
    (13e-4, Trace.Flow_resumed { flow = 0; rate = 1e9 });
    (15e-4, Trace.Flow_retransmit { flow = 0; kind = "timeout" });
    (17e-4, Trace.Flow_rx { flow = 0; bytes = 1460 });
    (21e-4, Trace.Flow_completed { flow = 0; fct = 21e-4 });
  ]

let flow_report (r : Attribution.report) id =
  match List.find_opt (fun (f : Attribution.flow_report) -> f.flow = id) r.Attribution.flows with
  | Some f -> f
  | None -> Alcotest.failf "flow %d missing from attribution report" id

let test_two_flow_attribution () =
  let r = Attribution.of_events two_flow_events in
  Alcotest.(check int) "two completed flows" 2 (List.length r.Attribution.flows);
  Alcotest.(check int) "no malformed flows" 0 (List.length r.Attribution.errors);
  (* The acceptance criterion: components sum to the measured FCT
     exactly — float equality, not within an epsilon. *)
  List.iter
    (fun (f : Attribution.flow_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d components sum exactly to fct" f.flow)
        true
        (Attribution.total f.Attribution.c = f.Attribution.fct))
    r.Attribution.flows;
  let f0 = flow_report r 0 in
  check_float "flow 0 handshake" 1e-4 f0.Attribution.c.Attribution.handshake;
  check_float "flow 0 paused" 1e-3 f0.Attribution.c.Attribution.paused;
  check_float "flow 0 recovery" 2e-4 f0.Attribution.c.Attribution.recovery;
  check_float "flow 0 downtime" 0. f0.Attribution.c.Attribution.downtime;
  Alcotest.(check int) "flow 0 retransmits" 1 f0.Attribution.retransmits;
  (* The paused epoch names the preempting flow. *)
  (match f0.Attribution.blamed with
  | [ (preempter, d) ] ->
      Alcotest.(check int) "flow 0 blames flow 1" 1 preempter;
      check_float "blamed seconds" 1e-3 d
  | l -> Alcotest.failf "expected one blame entry, got %d" (List.length l));
  (match r.Attribution.blame with
  | [ (p, v, d) ] ->
      Alcotest.(check int) "blame preempter" 1 p;
      Alcotest.(check int) "blame victim" 0 v;
      check_float "blame seconds" 1e-3 d
  | l -> Alcotest.failf "expected one global blame entry, got %d" (List.length l));
  let f1 = flow_report r 1 in
  check_float "flow 1 handshake" 2e-4 f1.Attribution.c.Attribution.handshake;
  check_float "flow 1 paused" 0. f1.Attribution.c.Attribution.paused;
  check_float "paused by preemption" 1e-3 r.Attribution.paused_preempted;
  check_float "paused by controller" 0. r.Attribution.paused_controller

let test_fault_downtime () =
  (* Same lifecycle, but a fault fires inside flow 0's loss epoch: the
     recovery window reclassifies as fault-induced downtime. *)
  let with_fault =
    List.concat_map
      (fun (t, ev) ->
        if t = 15e-4 then [ (14e-4, Trace.Fault { desc = "link-down" }); (t, ev) ]
        else [ (t, ev) ])
      two_flow_events
  in
  let r = Attribution.of_events with_fault in
  let f0 = flow_report r 0 in
  check_float "recovery reclassified" 0. f0.Attribution.c.Attribution.recovery;
  check_float "downtime carries the window" 2e-4 f0.Attribution.c.Attribution.downtime;
  Alcotest.(check bool) "sum still exact" true
    (Attribution.total f0.Attribution.c = f0.Attribution.fct)

let test_malformed_sequence () =
  (* Paused before established: the reconstructor must report the flow
     instead of inventing a lifecycle for it. *)
  let events =
    [
      (0., Trace.Flow_started { flow = 7 });
      (1e-4, Trace.Flow_paused { flow = 7; by = 1; preempted_by = None });
      (0., Trace.Flow_started { flow = 8 });
      (1e-4, Trace.Flow_established { flow = 8 });
      (2e-4, Trace.Flow_completed { flow = 8; fct = 2e-4 });
    ]
  in
  let sp = Spans.reconstruct events in
  (match sp.Spans.errors with
  | [ e ] ->
      Alcotest.(check int) "error names the flow" 7 e.Spans.flow;
      Alcotest.(check string) "error message" "paused before established"
        e.Spans.message
  | l -> Alcotest.failf "expected one error, got %d" (List.length l));
  Alcotest.(check (list int)) "malformed flow excluded, healthy one kept"
    [ 8 ]
    (List.map (fun (f : Spans.flow_spans) -> f.Spans.flow) sp.Spans.flows);
  let r = Attribution.of_spans sp in
  Alcotest.(check int) "report carries the error" 1
    (List.length r.Attribution.errors)

(* ------------------------------------------------------------------ *)
(* Live bus vs. recorded JSONL replay on a real simulated run. *)

let two_flow_scenario =
  Scenario.make
    ~topo:(Scenario.Bottleneck { senders = 2 })
    ~workload:
      (Scenario.Generated
         {
           label = "two flows";
           specs =
             (fun ~seed:_ ~topo:_ ~hosts ->
               let rx = hosts.(Array.length hosts - 1) in
               [
                 { Context.src = hosts.(0); dst = rx; size = Units.mbyte 1.;
                   deadline = None; start = 0. };
                 { Context.src = hosts.(1); dst = rx; size = Units.kbyte 100.;
                   deadline = None; start = 1e-4 };
               ]);
         })
    (Runner.Pdq Pdq_core.Config.full)

let test_live_vs_replay_identical () =
  with_temp_file ".jsonl" @@ fun path ->
  let mem = Trace.memory () in
  let oc = open_out path in
  let telemetry =
    { Runner.no_telemetry with Runner.sinks = [ mem; Trace.jsonl oc ] }
  in
  ignore
    (Scenario.run
       ~opts:(Pdq_exec.Exec_opts.telemetry telemetry)
       two_flow_scenario);
  close_out oc;
  let live = Attribution.of_events (Trace.memory_events mem) in
  let replayed =
    match Replay.read_file path with
    | Ok events -> Attribution.of_events events
    | Error e -> Alcotest.failf "replay failed: %s" e
  in
  Alcotest.(check string) "text report byte-identical"
    (Attribution.to_text live) (Attribution.to_text replayed);
  Alcotest.(check string) "csv report byte-identical"
    (Attribution.to_csv live) (Attribution.to_csv replayed);
  Alcotest.(check string) "json report byte-identical"
    (Attribution.to_json live) (Attribution.to_json replayed);
  (* The simulated run satisfies the same exactness the hand-built
     stream does, and PDQ actually preempted somebody. *)
  List.iter
    (fun (f : Attribution.flow_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "simulated flow %d sums exactly" f.Attribution.flow)
        true
        (Attribution.total f.Attribution.c = f.Attribution.fct))
    live.Attribution.flows;
  Alcotest.(check bool) "the short flow preempted the long one" true
    (List.exists (fun (p, v, _) -> p = 1 && v = 0) live.Attribution.blame)

let test_replay_strict_errors () =
  with_temp_file ".jsonl" @@ fun path ->
  write_lines path
    [ {|{"t":0,"ev":"flow_started","flow":1}|}; {|{"ev":"nope"}|} ];
  (match Replay.read_file path with
  | Ok _ -> Alcotest.fail "malformed line must abort the read"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error cites line 2: %s" e)
        true (contains e ":2:"));
  (* Blank lines and a trailing newline are tolerated. *)
  write_lines path
    [ {|{"t":0,"ev":"flow_started","flow":1}|}; "";
      {|{"t":1,"ev":"flow_completed","flow":1,"fct":1}|} ];
  match Replay.read_file path with
  | Ok events -> Alcotest.(check int) "blank lines skipped" 2 (List.length events)
  | Error e -> Alcotest.failf "blank lines must be tolerated: %s" e

(* ------------------------------------------------------------------ *)
(* Trace diffing: two hand-built runs differing only by a fault plan
   must flag only the faulted flow's downtime (and its total FCT). *)

let base_run flow1_tail =
  [
    admitted ~t:0. 0;
    (0., Trace.Flow_started { flow = 0 });
    (1e-4, Trace.Flow_established { flow = 0 });
    (0.01, Trace.Flow_completed { flow = 0; fct = 0.01 });
    admitted ~t:0. 1;
    (0., Trace.Flow_started { flow = 1 });
    (1e-4, Trace.Flow_established { flow = 1 });
  ]
  @ flow1_tail

let test_diff_flags_only_fault_downtime () =
  let before =
    Attribution.of_events
      (base_run [ (0.012, Trace.Flow_completed { flow = 1; fct = 0.012 }) ])
  in
  (* The second run is identical except a 50 ms fault outage hits flow
     1 mid-transfer; flow 0 is untouched. *)
  let after =
    Attribution.of_events
      (base_run
         [
           (0.005, Trace.Fault { desc = "link-down" });
           (0.005, Trace.Flow_retransmit { flow = 1; kind = "watchdog" });
           (0.055, Trace.Flow_rx { flow = 1; bytes = 1460 });
           (0.062, Trace.Flow_completed { flow = 1; fct = 0.062 });
         ])
  in
  let d = Trace_diff.diff ~threshold:1e-3 before after in
  Alcotest.(check (list int)) "no one-sided flows (before)" []
    d.Trace_diff.only_before;
  Alcotest.(check (list int)) "no one-sided flows (after)" []
    d.Trace_diff.only_after;
  let changed =
    List.map
      (fun (e : Trace_diff.entry) -> (e.Trace_diff.flow, e.Trace_diff.component))
      d.Trace_diff.changed
    |> List.sort compare
  in
  Alcotest.(check (list (pair int string)))
    "only flow 1's downtime (and its fct) moved"
    [ (1, "downtime"); (1, "fct") ]
    changed;
  List.iter
    (fun (e : Trace_diff.entry) ->
      check_float
        (Printf.sprintf "flow 1 %s regressed by the outage" e.Trace_diff.component)
        0.05 (Trace_diff.delta e))
    d.Trace_diff.changed;
  (* A self-diff is empty. *)
  let self = Trace_diff.diff before before in
  Alcotest.(check int) "self-diff is clean" 0
    (List.length self.Trace_diff.changed)

(* ------------------------------------------------------------------ *)
(* JSON round trip over every event constructor (satellite of the
   replay path: event_of_json must be an exact inverse). *)

let gen_event =
  let open QCheck.Gen in
  let fin = map (fun f -> if Float.is_finite f then f else 0.) float in
  let pos = small_nat in
  let str =
    oneof [ string_printable; return "a\"b\\c\nd"; return "" ]
  in
  let cause =
    oneofl [ Trace.Loss; Trace.Overflow; Trace.Link_down; Trace.Stale_route ]
  in
  oneof
    [
      (let* flow = pos and* src = pos and* dst = pos and* size = pos
       and* deadline = option fin in
       return (Trace.Flow_admitted { flow; src; dst; size; deadline }));
      map (fun flow -> Trace.Flow_started { flow }) pos;
      map (fun flow -> Trace.Flow_established { flow }) pos;
      (let* flow = pos and* by = pos and* preempted_by = option pos in
       return (Trace.Flow_paused { flow; by; preempted_by }));
      (let* flow = pos and* rate = fin in
       return (Trace.Flow_resumed { flow; rate }));
      (let* flow = pos and* rate = fin in
       return (Trace.Flow_rate_set { flow; rate }));
      (let* flow = pos and* fct = fin in
       return (Trace.Flow_completed { flow; fct }));
      map (fun flow -> Trace.Flow_terminated { flow }) pos;
      (let* flow = pos and* cause = str in
       return (Trace.Flow_aborted { flow; cause }));
      (let* flow = pos and* bytes = pos in
       return (Trace.Flow_rx { flow; bytes }));
      (let* flow = pos and* kind = str in
       return (Trace.Flow_retransmit { flow; kind }));
      map (fun switch -> Trace.Switch_flushed { switch }) pos;
      map (fun switch -> Trace.Switch_rebuilt { switch }) pos;
      (let* link = pos and* cause = cause in
       return (Trace.Packet_dropped { link; cause }));
      map (fun desc -> Trace.Fault { desc }) str;
      (let* target = pos and* action = str in
       return (Trace.Adversary { target; action }));
      (let* index = pos and* key = str and* state = str and* attempts = pos
       and* elapsed = fin and* detail = str in
       return (Trace.Sweep_task { index; key; state; attempts; elapsed; detail }));
    ]

let event_roundtrip =
  QCheck.Test.make ~name:"event_of_json inverts event_to_json exactly"
    ~count:500
    (QCheck.make
       ~print:(fun (t, ev) -> Trace.event_to_json ~time:t ev)
       QCheck.Gen.(
         let* t = map (fun f -> if Float.is_finite f then f else 0.) float
         and* ev = gen_event in
         return (t, ev)))
    (fun (t, ev) ->
      match Trace.event_of_json (Trace.event_to_json ~time:t ev) with
      | Ok (t', ev') -> t' = t && ev' = ev
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

(* ------------------------------------------------------------------ *)
(* Sweep_task events reach a JSONL sink during a supervised sweep. *)

let test_sweep_task_through_jsonl () =
  with_temp_file ".jsonl" @@ fun path ->
  let scenarios =
    List.map (Scenario.with_seed two_flow_scenario) [ 1; 2 ]
  in
  let oc = open_out path in
  let bus =
    Trace.create ~clock:Unix.gettimeofday ~sinks:[ Trace.jsonl oc ]
  in
  let sup =
    Sweep.run_supervised ~opts:(Pdq_exec.Exec_opts.jobs 2)
      ~on_event:(Sweep.emit_trace bus)
      scenarios
  in
  close_out oc;
  Alcotest.(check int) "both slots ok" 2 sup.Sweep.report.Sweep.ok;
  match Replay.read_file path with
  | Error e -> Alcotest.failf "sweep trace unreadable: %s" e
  | Ok events ->
      let tasks =
        List.filter_map
          (fun (_, ev) ->
            match ev with
            | Trace.Sweep_task { index; key; state; _ } ->
                Some (index, key, state)
            | _ -> None)
          events
      in
      Alcotest.(check int) "every event is a sweep task"
        (List.length events) (List.length tasks);
      Alcotest.(check (list (pair int string)))
        "one ok record per slot, keyed by scenario digest"
        (List.mapi (fun i s -> (i, Scenario.digest s)) scenarios)
        (List.sort compare (List.map (fun (i, k, _) -> (i, k)) tasks));
      List.iter
        (fun (_, _, state) ->
          Alcotest.(check string) "slot state" "ok" state)
        tasks

(* ------------------------------------------------------------------ *)
(* Metrics CSV field quoting (RFC 4180). *)

let test_metrics_csv_quoting () =
  with_temp_file ".csv" @@ fun path ->
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m {|odd,"name|}) ();
  Metrics.set_gauge (Metrics.gauge m "plain.name") 2.5;
  let oc = open_out path in
  Metrics.write_csv m oc;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check bool) "delimiter-carrying name is quoted and doubled" true
    (List.mem {|counter,,"odd,""name",1|} lines);
  Alcotest.(check bool) "plain names stay bare" true
    (List.mem "gauge,,plain.name,2.5" lines)

let suites =
  [
    ( "forensics.spans",
      [
        Alcotest.test_case "two-flow attribution is exact" `Quick
          test_two_flow_attribution;
        Alcotest.test_case "fault inside loss epoch becomes downtime" `Quick
          test_fault_downtime;
        Alcotest.test_case "malformed sequences are reported, not guessed"
          `Quick test_malformed_sequence;
      ] );
    ( "forensics.replay",
      [
        Alcotest.test_case "live bus and JSONL replay render identically"
          `Quick test_live_vs_replay_identical;
        Alcotest.test_case "replay is strict and line-addressed" `Quick
          test_replay_strict_errors;
        QCheck_alcotest.to_alcotest event_roundtrip;
      ] );
    ( "forensics.diff",
      [
        Alcotest.test_case "fault-only change flags only downtime" `Quick
          test_diff_flags_only_fault_downtime;
      ] );
    ( "forensics.sweep",
      [
        Alcotest.test_case "supervised sweep tasks reach a JSONL sink" `Quick
          test_sweep_task_through_jsonl;
        Alcotest.test_case "metrics csv quotes delimiter names" `Quick
          test_metrics_csv_quoting;
      ] );
  ]
