(* Test aggregator: each [Test_*] module exports [suites]. *)

let () =
  Alcotest.run "pdq"
    (List.concat
       [
         Test_engine.suites;
         Test_telemetry.suites;
         Test_net.suites;
         Test_core.suites;
         Test_transport.suites;
         Test_faults.suites;
         Test_mpdq.suites;
         Test_sched.suites;
         Test_workload.suites;
         Test_flowsim.suites;
         Test_exec.suites;
         Test_forensics.suites;
         Test_check.suites;
         Test_apps.suites;
         Test_cli.suites;
         Test_experiments.suites;
         Test_chaos.suites;
       ])
