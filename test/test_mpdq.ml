(* Tests for the multipath pieces: the interval-based receive buffer,
   BCube address-based parallel paths, and M-PDQ end-to-end invariants
   (no byte lost or duplicated across subflow load shifts), plus the
   §4 convergence property at packet level. *)

module Rx_buffer = Pdq_transport.Rx_buffer
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Sim = Pdq_engine.Sim
module Rng = Pdq_engine.Rng
module Units = Pdq_engine.Units

(* ------------------------------------------------------------------ *)
(* Rx_buffer *)

let test_rx_in_order () =
  let b = Rx_buffer.create ~size:5000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:0 ~bytes:1444;
  Alcotest.(check int) "cum" 1444 (Rx_buffer.cumulative_ack b);
  Rx_buffer.on_data b ~seq:1444 ~bytes:1444;
  Rx_buffer.on_data b ~seq:2888 ~bytes:1444;
  Rx_buffer.on_data b ~seq:4332 ~bytes:668;
  Alcotest.(check bool) "complete" true (Rx_buffer.complete b);
  Alcotest.(check int) "all bytes" 5000 (Rx_buffer.received_bytes b)

let test_rx_out_of_order () =
  let b = Rx_buffer.create ~size:5000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:1444 ~bytes:1444;
  Alcotest.(check int) "hole keeps cum at 0" 0 (Rx_buffer.cumulative_ack b);
  Alcotest.(check int) "but bytes counted" 1444 (Rx_buffer.received_bytes b);
  Rx_buffer.on_data b ~seq:0 ~bytes:1444;
  Alcotest.(check int) "hole filled" 2888 (Rx_buffer.cumulative_ack b)

let test_rx_duplicates () =
  let b = Rx_buffer.create ~size:5000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:0 ~bytes:1444;
  Rx_buffer.on_data b ~seq:0 ~bytes:1444;
  Rx_buffer.on_data b ~seq:722 ~bytes:1444 (* overlapping *);
  Alcotest.(check int) "no double counting" 2166 (Rx_buffer.received_bytes b)

let test_rx_unaligned () =
  (* Arbitrary boundaries, as created by M-PDQ resizes. *)
  let b = Rx_buffer.create ~size:4000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:0 ~bytes:1000;
  Rx_buffer.on_data b ~seq:1000 ~bytes:777;
  Rx_buffer.on_data b ~seq:1777 ~bytes:2223;
  Alcotest.(check bool) "complete across odd boundaries" true
    (Rx_buffer.complete b)

let test_rx_resize () =
  let b = Rx_buffer.create ~capacity:10_000 ~size:4000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:0 ~bytes:4000;
  Alcotest.(check bool) "complete at initial size" true (Rx_buffer.complete b);
  Rx_buffer.set_size b 8000;
  Alcotest.(check bool) "grown: incomplete again" false (Rx_buffer.complete b);
  Rx_buffer.on_data b ~seq:4000 ~bytes:4000;
  Alcotest.(check bool) "complete at grown size" true (Rx_buffer.complete b);
  Alcotest.check_raises "cannot shrink below received"
    (Invalid_argument "Rx_buffer.set_size: below received") (fun () ->
      Rx_buffer.set_size b 6000)

let test_rx_beyond_size_dropped () =
  let b = Rx_buffer.create ~capacity:10_000 ~size:2000 ~segment:1444 () in
  Rx_buffer.on_data b ~seq:1500 ~bytes:1444;
  Alcotest.(check int) "clipped at size" 500 (Rx_buffer.received_bytes b)

let prop_rx_random_arrivals =
  QCheck.Test.make ~name:"random segment arrivals complete exactly once"
    ~count:200
    QCheck.(pair (int_range 1 30) small_nat)
    (fun (nseg, seed) ->
      let segment = 100 in
      let size = nseg * segment in
      let b = Rx_buffer.create ~size ~segment () in
      let rng = Rng.create seed in
      let order = Rng.permutation rng nseg in
      Array.iter
        (fun i ->
          Rx_buffer.on_data b ~seq:(i * segment) ~bytes:segment;
          (* Duplicate delivery of the same segment. *)
          if Rng.bool rng 0.3 then
            Rx_buffer.on_data b ~seq:(i * segment) ~bytes:segment)
        order;
      Rx_buffer.complete b && Rx_buffer.received_bytes b = size)

(* ------------------------------------------------------------------ *)
(* BCube address-based paths *)

let with_bcube ~n ~k f =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n ~k () in
  f built

let test_bcube_paths_valid () =
  with_bcube ~n:2 ~k:3 (fun built ->
      let hosts = built.Builder.hosts in
      let paths = Builder.bcube_paths ~n:2 ~k:3 built ~src:hosts.(0) ~dst:hosts.(15) in
      Alcotest.(check bool) "multiple parallel paths" true (List.length paths >= 2);
      List.iter
        (fun path ->
          Alcotest.(check int) "starts at src" hosts.(0) path.(0);
          Alcotest.(check int) "ends at dst" hosts.(15)
            path.(Array.length path - 1);
          (* Every consecutive pair must be adjacent in the topology. *)
          for i = 0 to Array.length path - 2 do
            ignore
              (Pdq_net.Topology.link_to built.Builder.topo ~src:path.(i)
                 ~dst:path.(i + 1))
          done)
        paths)

let test_bcube_paths_port_diversity () =
  with_bcube ~n:2 ~k:3 (fun built ->
      let hosts = built.Builder.hosts in
      (* Hosts differing in all 4 digits: 4 parallel paths leaving via
         4 distinct first hops (one per server port). *)
      let paths = Builder.bcube_paths ~n:2 ~k:3 built ~src:hosts.(0) ~dst:hosts.(15) in
      let first_hops =
        List.map (fun p -> p.(1)) paths |> List.sort_uniq compare
      in
      Alcotest.(check int) "4 distinct first hops" 4 (List.length first_hops))

let test_bcube_paths_single_digit () =
  with_bcube ~n:2 ~k:3 (fun built ->
      let hosts = built.Builder.hosts in
      (* Hosts differing in one digit: exactly one 2-hop path. *)
      let paths = Builder.bcube_paths ~n:2 ~k:3 built ~src:hosts.(0) ~dst:hosts.(1) in
      Alcotest.(check int) "one path" 1 (List.length paths);
      Alcotest.(check int) "host-switch-host" 3 (Array.length (List.hd paths)))

let prop_bcube_paths_all_pairs =
  QCheck.Test.make ~name:"bcube paths valid for every pair" ~count:60
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      with_bcube ~n:2 ~k:3 (fun built ->
          let hosts = built.Builder.hosts in
          let paths =
            Builder.bcube_paths ~n:2 ~k:3 built ~src:hosts.(a) ~dst:hosts.(b)
          in
          paths <> []
          && List.for_all
               (fun p ->
                 p.(0) = hosts.(a)
                 && p.(Array.length p - 1) = hosts.(b)
                 && Array.length p mod 2 = 1 (* host/switch alternation *))
               paths))

(* ------------------------------------------------------------------ *)
(* M-PDQ end-to-end invariants *)

let run_mpdq ~subflows ~with_paths specs_of =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  let paths =
    if with_paths then
      Some (fun ~src ~dst -> Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst)
    else None
  in
  let r =
    Runner.execute
      ~options:{ Runner.default_options with Runner.horizon = 5. }
      ~topo:built.Builder.topo
      (Runner.mpdq ?paths ~subflows ())
      (specs_of built.Builder.hosts)
  in
  r

let spec ?deadline ~src ~dst ~size () =
  { Context.src; dst; size; deadline; start = 0. }

let test_mpdq_exact_delivery () =
  (* Sizes that do not divide evenly by the subflow count or the
     segment size: rebalancing must still deliver every byte exactly
     once (the receiver-side interval set enforces "at most once"; the
     completion enforces "at least once"). *)
  List.iter
    (fun (subflows, size) ->
      let r =
        run_mpdq ~subflows ~with_paths:true (fun hosts ->
            [ spec ~src:hosts.(0) ~dst:hosts.(15) ~size () ])
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d size=%d completes" subflows size)
        1 r.Runner.completed)
    [ (2, 100_001); (3, 299_999); (4, 1_000_003); (7, 54_321) ]

let test_mpdq_faster_than_pdq_light_load () =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  let hosts = built.Builder.hosts in
  let mk proto =
    let sim = Sim.create () in
    let built = Builder.bcube ~sim ~n:2 ~k:3 () in
    Runner.execute
      ~options:{ Runner.default_options with Runner.horizon = 5. }
      ~topo:built.Builder.topo proto
      [
        spec ~src:hosts.(0) ~dst:hosts.(15) ~size:(Units.mbyte 1.) ();
        spec ~src:hosts.(3) ~dst:hosts.(12) ~size:(Units.mbyte 1.) ();
      ]
  in
  let paths ~src ~dst = Builder.bcube_paths ~n:2 ~k:3 built ~src ~dst in
  let pdq = mk (Runner.Pdq Pdq_core.Config.full) in
  let mpdq = mk (Runner.mpdq ~paths ~subflows:3 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "M-PDQ (%.2fms) beats PDQ (%.2fms) at light load"
       (1e3 *. mpdq.Runner.mean_fct) (1e3 *. pdq.Runner.mean_fct))
    true
    (mpdq.Runner.mean_fct < pdq.Runner.mean_fct)

let test_mpdq_flow_level_early_termination () =
  (* An impossible deadline: the coordinator terminates the whole
     group instead of leaving subflows running. *)
  let r =
    run_mpdq ~subflows:3 ~with_paths:true (fun hosts ->
        [
          spec ~src:hosts.(0) ~dst:hosts.(15) ~size:(Units.mbyte 4.)
            ~deadline:0.004 ();
        ])
  in
  Alcotest.(check bool) "terminated" true r.Runner.flows.(0).Runner.terminated;
  Alcotest.(check bool) "not counted as met" false
    r.Runner.flows.(0).Runner.met_deadline

(* ------------------------------------------------------------------ *)
(* §4 convergence at packet level: stable workload on one bottleneck
   reaches the equilibrium "driver sends, others paused" within a few
   RTTs and stays there. *)

let test_equilibrium_single_driver () =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:4 () in
  let hosts = built.Builder.hosts in
  let specs =
    List.init 4 (fun i ->
        spec ~src:hosts.(i) ~dst:rx ~size:(Units.mbyte 2.) ())
  in
  let mem = Pdq_telemetry.Trace.memory () in
  let options =
    {
      Runner.default_options with
      Runner.horizon = 0.012;
      stop_when_done = false;
      telemetry = { Runner.no_telemetry with Runner.sinks = [ mem ] };
    }
  in
  let r =
    Runner.execute ~options ~topo:built.Builder.topo (Runner.Pdq Pdq_core.Config.full)
      specs
  in
  ignore r;
  (* After a convergence window of Pmax+1 RTTs (~1.5ms here, generous:
     3ms), the driver must carry nearly all delivered bytes. Paused
     flows may still pick up slivers while the rate controller's C
     oscillates around the committed rates, so the equilibrium claim
     is about the byte share, not strict silence. The per-flow byte
     series is reconstructed from the [Flow_rx] trace events. *)
  let per_flow = Hashtbl.create 8 in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Pdq_telemetry.Trace.Flow_rx { flow; bytes }
        when t > 0.003 && t < 0.010 ->
          Hashtbl.replace per_flow flow
            ((match Hashtbl.find_opt per_flow flow with
             | Some b -> b
             | None -> 0.)
            +. float_of_int bytes)
      | _ -> ())
    (Pdq_telemetry.Trace.memory_events mem);
  let shares = Hashtbl.fold (fun _ b acc -> b :: acc) per_flow [] in
  let total = List.fold_left ( +. ) 0. shares in
  let top = List.fold_left max 0. shares in
  Alcotest.(check bool)
    (Printf.sprintf "driver share %.3f > 0.9" (top /. total))
    true
    (total > 0. && top /. total > 0.9)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "mpdq.rx_buffer",
      [
        Alcotest.test_case "in order" `Quick test_rx_in_order;
        Alcotest.test_case "out of order" `Quick test_rx_out_of_order;
        Alcotest.test_case "duplicates" `Quick test_rx_duplicates;
        Alcotest.test_case "unaligned boundaries" `Quick test_rx_unaligned;
        Alcotest.test_case "resize" `Quick test_rx_resize;
        Alcotest.test_case "beyond size clipped" `Quick test_rx_beyond_size_dropped;
      ]
      @ qsuite [ prop_rx_random_arrivals ] );
    ( "mpdq.bcube_paths",
      [
        Alcotest.test_case "paths valid" `Quick test_bcube_paths_valid;
        Alcotest.test_case "port diversity" `Quick test_bcube_paths_port_diversity;
        Alcotest.test_case "single-digit pair" `Quick test_bcube_paths_single_digit;
      ]
      @ qsuite [ prop_bcube_paths_all_pairs ] );
    ( "mpdq.protocol",
      [
        Alcotest.test_case "exact delivery under rebalancing" `Quick
          test_mpdq_exact_delivery;
        Alcotest.test_case "faster at light load" `Quick
          test_mpdq_faster_than_pdq_light_load;
        Alcotest.test_case "flow-level early termination" `Quick
          test_mpdq_flow_level_early_termination;
      ] );
    ( "pdq.formal",
      [
        Alcotest.test_case "equilibrium: single driver sends" `Quick
          test_equilibrium_single_driver;
      ] );
  ]
