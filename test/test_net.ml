(* Tests for pdq_net + pdq_topo: links, queues, topologies, routing. *)

module Sim = Pdq_engine.Sim
module Units = Pdq_engine.Units
module Rng = Pdq_engine.Rng
module Packet = Pdq_net.Packet
module Link = Pdq_net.Link
module Topology = Pdq_net.Topology
module Router = Pdq_net.Router
module Builder = Pdq_topo.Builder

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

let mk_packet ?(bytes = 1500) ~now () =
  Packet.make ~flow:0 ~src:0 ~dst:1 ~kind:Packet.Data
    ~payload_bytes:(bytes - Packet.header_bytes) ~payload:Packet.No_payload ~now ()

(* ------------------------------------------------------------------ *)
(* Link *)

let mk_link ?(rate = Units.gbps 1.) ?(buffer = Units.mbyte 4.) sim =
  Link.create ~sim ~id:0 ~src:0 ~dst:1 ~rate ~prop_delay:(Units.us 0.1)
    ~proc_delay:(Units.us 25.) ~buffer_bytes:buffer ()

let test_link_delivery_time () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let arrival = ref nan in
  Link.set_receiver link (fun _ -> arrival := Sim.now sim);
  Link.send link (mk_packet ~now:0. ());
  Sim.run sim;
  (* 1500 B at 1 Gbps = 12 us serialization + 0.1 us prop + 25 us proc. *)
  let expected = 12e-6 +. 0.1e-6 +. 25e-6 in
  if not (feq expected !arrival) then
    Alcotest.failf "arrival %.9f, expected %.9f" !arrival expected

let test_link_serialization_fifo () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let order = ref [] in
  Link.set_receiver link (fun p -> order := p.Packet.seq :: !order);
  for i = 0 to 4 do
    Link.send link
      (Packet.make ~flow:0 ~src:0 ~dst:1 ~kind:Packet.Data ~payload_bytes:1460
         ~seq:i ~payload:Packet.No_payload ~now:0. ())
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Alcotest.(check int) "all delivered" 5 (Link.delivered link)

let test_link_tail_drop () =
  let sim = Sim.create () in
  (* Buffer fits only two full packets. *)
  let link = mk_link ~buffer:3200 sim in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  for _ = 1 to 5 do
    Link.send link (mk_packet ~now:0. ())
  done;
  Sim.run sim;
  Alcotest.(check int) "delivered limited by buffer" 2 !got;
  Alcotest.(check int) "drops counted" 3 (Link.dropped link)

let test_link_queue_accounting () =
  let sim = Sim.create () in
  let link = mk_link sim in
  Link.set_receiver link (fun _ -> ());
  Link.send link (mk_packet ~now:0. ());
  Link.send link (mk_packet ~now:0. ());
  Alcotest.(check int) "queued bytes" 3000 (Link.queue_bytes link);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Link.queue_bytes link)

let test_link_loss () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  Link.set_loss link ~rate:0.5 ~rng:(Rng.create 42);
  for _ = 1 to 1000 do
    Link.send link (mk_packet ~now:0. ())
  done;
  Sim.run sim;
  let frac = float_of_int !got /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "~half delivered (got %.3f)" frac)
    true
    (frac > 0.42 && frac < 0.58)

(* Down-link semantics: drops happen at admission (counted as
   dropped_down), packets already queued still drain, and bringing the
   link back up restores delivery. *)
let test_link_down_up () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  Link.send link (mk_packet ~now:0. ());
  Link.send link (mk_packet ~now:0. ());
  Alcotest.(check bool) "starts up" true (Link.is_up link);
  Link.set_up link false;
  Alcotest.(check int) "queued survive the failure" 3000
    (Link.queue_bytes link);
  Link.send link (mk_packet ~now:0. ());
  Link.send link (mk_packet ~now:0. ());
  Sim.run sim;
  Alcotest.(check int) "queued packets drained" 2 !got;
  Alcotest.(check int) "admission drops counted" 2 (Link.dropped_down link);
  Alcotest.(check int) "no loss drops" 0 (Link.dropped_loss link);
  Link.set_up link true;
  Link.send link (mk_packet ~now:(Sim.now sim) ());
  Sim.run sim;
  Alcotest.(check int) "delivery restored" 3 !got

(* Gilbert-Elliott: deterministic for a fixed seed, and burstier than
   Bernoulli at the same average loss — long loss-free stretches
   alternating with black-out runs. *)
let test_link_gilbert_loss () =
  let run seed =
    let sim = Sim.create () in
    let link = mk_link sim in
    let delivered = ref [] in
    let n = ref 0 in
    Link.set_receiver link (fun _ -> delivered := !n :: !delivered);
    Link.set_loss_model link
      (Link.Gilbert
         { Link.p_gb = 0.01; p_bg = 0.1; loss_good = 0.; loss_bad = 1. })
      ~rng:(Rng.create seed);
    for i = 1 to 2000 do
      n := i;
      Link.send link (mk_packet ~now:(Sim.now sim) ());
      Sim.run sim
    done;
    List.rev !delivered
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check bool) "same seed, same drop pattern" true (a = b);
  let frac = float_of_int (List.length a) /. 2000. in
  (* Stationary bad-state probability 0.01/(0.01+0.1) ~ 9%. *)
  Alcotest.(check bool)
    (Printf.sprintf "~91%% delivered (got %.3f)" frac)
    true
    (frac > 0.82 && frac < 0.97);
  (* Burstiness: consecutive losses must occur far more often than the
     squared loss rate would allow under Bernoulli. *)
  let losses = ref 0 and paired = ref 0 in
  let prev_lost = ref false in
  let delivered = Array.make 2001 false in
  List.iter (fun i -> delivered.(i) <- true) a;
  for i = 1 to 2000 do
    if not delivered.(i) then begin
      incr losses;
      if !prev_lost then incr paired
    end;
    prev_lost := not delivered.(i)
  done;
  Alcotest.(check bool) "losses come in runs" true
    (float_of_int !paired > 0.5 *. float_of_int !losses)

let test_link_tap () =
  let sim = Sim.create () in
  let link = mk_link sim in
  Link.set_receiver link (fun _ -> ());
  let taps = ref 0 in
  Link.on_transmit link (fun ~now:_ ~bytes -> taps := !taps + bytes);
  Link.send link (mk_packet ~now:0. ());
  Sim.run sim;
  Alcotest.(check int) "tap saw the bytes" 1500 !taps;
  Alcotest.(check int) "bytes_sent" 1500 (Link.bytes_sent link)

(* ------------------------------------------------------------------ *)
(* Topology wiring *)

let test_no_handler_carries_node_id () =
  let sim = Sim.create () in
  let topo = Topology.create ~sim () in
  let a = Topology.add_host topo in
  let b = Topology.add_host topo in
  Topology.connect topo a b;
  (* [b] never got a handler: delivery must raise [No_handler b], not a
     generic failure, so the wiring bug names the culprit node. *)
  Link.send (Topology.link_to topo ~src:a ~dst:b) (mk_packet ~now:0. ());
  (match Sim.run sim with
  | () -> Alcotest.fail "expected No_handler"
  | exception Topology.No_handler id ->
      Alcotest.(check int) "exception names the node" b id);
  (* Installing the handler afterwards makes delivery work. *)
  let got = ref 0 in
  Topology.set_handler topo b (fun _ -> incr got);
  Link.send (Topology.link_to topo ~src:a ~dst:b) (mk_packet ~now:0. ());
  Sim.run sim;
  Alcotest.(check int) "delivered after set_handler" 1 !got

(* ------------------------------------------------------------------ *)
(* Topologies *)

let test_single_bottleneck () =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:3 () in
  Alcotest.(check int) "hosts" 4 (Array.length built.Builder.hosts);
  Alcotest.(check int) "nodes" 5 (Topology.node_count built.Builder.topo);
  Alcotest.(check bool) "receiver is a host" true
    (Topology.kind built.Builder.topo rx = Topology.Host)

let test_single_rooted_tree () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  (* 1 root + 4 ToR + 12 servers = 17 nodes (the paper's topology). *)
  Alcotest.(check int) "17 nodes" 17 (Topology.node_count built.Builder.topo);
  Alcotest.(check int) "12 servers" 12 (Array.length built.Builder.hosts);
  let racks =
    Array.map (Topology.rack_of built.Builder.topo) built.Builder.hosts
  in
  Alcotest.(check int) "4 racks" 4
    (List.length (List.sort_uniq compare (Array.to_list racks)))

let test_fat_tree_counts () =
  let sim = Sim.create () in
  let built = Builder.fat_tree ~sim ~k:4 () in
  Alcotest.(check int) "k=4 has 16 hosts" 16 (Array.length built.Builder.hosts);
  (* 4 cores + 4 pods * (2 agg + 2 edge) = 20 switches. *)
  Alcotest.(check int) "nodes" 36 (Topology.node_count built.Builder.topo)

let test_fat_tree_for_servers () =
  let sim = Sim.create () in
  let built = Builder.fat_tree_for_servers ~sim ~servers:100 () in
  Alcotest.(check bool) "at least 100 hosts" true
    (Array.length built.Builder.hosts >= 100)

let test_bcube_counts () =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:4 ~k:1 () in
  (* BCube(4,1): 16 hosts, 2 levels of 4 switches. *)
  Alcotest.(check int) "16 hosts" 16 (Array.length built.Builder.hosts);
  Alcotest.(check int) "24 nodes" 24 (Topology.node_count built.Builder.topo);
  (* Every host has k+1 = 2 ports. *)
  Array.iter
    (fun h ->
      Alcotest.(check int) "dual-port host" 2
        (List.length (Topology.links_from built.Builder.topo h)))
    built.Builder.hosts

let test_bcube_connectivity () =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  Alcotest.(check int) "BCube(2,3): 16 hosts" 16 (Array.length built.Builder.hosts);
  let router = Router.create built.Builder.topo in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a <> b then ignore (Router.distance router ~src:a ~dst:b))
        built.Builder.hosts)
    built.Builder.hosts

let test_jellyfish () =
  let sim = Sim.create () in
  let rng = Rng.create 9 in
  let built = Builder.jellyfish ~sim ~rng ~switches:20 ~ports:24 ~net_ports:16 () in
  Alcotest.(check int) "8 hosts per switch" 160 (Array.length built.Builder.hosts);
  let router = Router.create built.Builder.topo in
  (* Connected: every pair of hosts is reachable. *)
  let h = built.Builder.hosts in
  ignore (Router.distance router ~src:h.(0) ~dst:h.(Array.length h - 1))

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_route_shortest () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let router = Router.create built.Builder.topo in
  let h = built.Builder.hosts in
  (* Same rack: host -> ToR -> host = 2 hops. *)
  Alcotest.(check int) "intra-rack distance" 2
    (Router.distance router ~src:h.(0) ~dst:h.(1));
  (* Cross rack: host -> ToR -> root -> ToR -> host = 4 hops. *)
  Alcotest.(check int) "cross-rack distance" 4
    (Router.distance router ~src:h.(0) ~dst:h.(11));
  let path = Router.path router ~src:h.(0) ~dst:h.(11) ~choice:7 in
  Alcotest.(check int) "path nodes" 5 (Array.length path);
  Alcotest.(check int) "starts at src" h.(0) path.(0);
  Alcotest.(check int) "ends at dst" h.(11) path.(4)

let test_route_deterministic () =
  let sim = Sim.create () in
  let built = Builder.fat_tree ~sim ~k:4 () in
  let router = Router.create built.Builder.topo in
  let h = built.Builder.hosts in
  let p1 = Router.path router ~src:h.(0) ~dst:h.(15) ~choice:3 in
  let p2 = Router.path router ~src:h.(0) ~dst:h.(15) ~choice:3 in
  Alcotest.(check bool) "same choice, same path" true (p1 = p2)

let test_route_ecmp_diversity () =
  let sim = Sim.create () in
  let built = Builder.fat_tree ~sim ~k:4 () in
  let router = Router.create built.Builder.topo in
  let h = built.Builder.hosts in
  let paths =
    List.init 64 (fun c ->
        Array.to_list (Router.path router ~src:h.(0) ~dst:h.(15) ~choice:c))
  in
  let distinct = List.length (List.sort_uniq compare paths) in
  Alcotest.(check bool)
    (Printf.sprintf "multiple ECMP paths (%d)" distinct)
    true (distinct > 1)

let test_path_links_consistent () =
  let sim = Sim.create () in
  let built = Builder.fat_tree ~sim ~k:4 () in
  let router = Router.create built.Builder.topo in
  let h = built.Builder.hosts in
  let nodes = Router.path router ~src:h.(0) ~dst:h.(12) ~choice:0 in
  let links = Router.path_links router ~src:h.(0) ~dst:h.(12) ~choice:0 in
  Alcotest.(check int) "one link per hop" (Array.length nodes - 1)
    (Array.length links);
  Array.iteri
    (fun i l ->
      let link = Topology.link built.Builder.topo l in
      Alcotest.(check int) "link src" nodes.(i) (Link.src link);
      Alcotest.(check int) "link dst" nodes.(i + 1) (Link.dst link))
    links

let prop_routes_are_shortest =
  QCheck.Test.make ~name:"ECMP path length equals BFS distance" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let sim = Sim.create () in
      let built = Builder.fat_tree ~sim ~k:4 () in
      let router = Router.create built.Builder.topo in
      let h = built.Builder.hosts in
      let src = h.(a mod 16) and dst = h.(b mod 16) in
      QCheck.assume (src <> dst);
      let d = Router.distance router ~src ~dst in
      let p = Router.path router ~src ~dst ~choice:(a + b) in
      Array.length p = d + 1)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "net.link",
      [
        Alcotest.test_case "delivery latency" `Quick test_link_delivery_time;
        Alcotest.test_case "FIFO serialization" `Quick test_link_serialization_fifo;
        Alcotest.test_case "tail drop" `Quick test_link_tail_drop;
        Alcotest.test_case "queue accounting" `Quick test_link_queue_accounting;
        Alcotest.test_case "bernoulli loss" `Quick test_link_loss;
        Alcotest.test_case "down/up semantics" `Quick test_link_down_up;
        Alcotest.test_case "gilbert-elliott loss" `Quick test_link_gilbert_loss;
        Alcotest.test_case "transmit tap" `Quick test_link_tap;
      ] );
    ( "net.topologies",
      [
        Alcotest.test_case "missing handler names node" `Quick
          test_no_handler_carries_node_id;
        Alcotest.test_case "single bottleneck" `Quick test_single_bottleneck;
        Alcotest.test_case "single-rooted tree (Fig 2a)" `Quick
          test_single_rooted_tree;
        Alcotest.test_case "fat-tree counts" `Quick test_fat_tree_counts;
        Alcotest.test_case "fat-tree sizing" `Quick test_fat_tree_for_servers;
        Alcotest.test_case "bcube counts" `Quick test_bcube_counts;
        Alcotest.test_case "bcube(2,3) connectivity" `Quick test_bcube_connectivity;
        Alcotest.test_case "jellyfish" `Quick test_jellyfish;
      ] );
    ( "net.routing",
      [
        Alcotest.test_case "shortest paths" `Quick test_route_shortest;
        Alcotest.test_case "deterministic choice" `Quick test_route_deterministic;
        Alcotest.test_case "ecmp diversity" `Quick test_route_ecmp_diversity;
        Alcotest.test_case "path/link consistency" `Quick test_path_links_consistent;
      ]
      @ qsuite [ prop_routes_are_shortest ] );
  ]
