(* Tests for pdq_telemetry and its wiring: trace-bus semantics, sinks,
   the metrics registry, the runner's network-wide probe, the
   simulator profiler, and the guarantee that attaching any of them
   cannot perturb a run. *)

module Sim = Pdq_engine.Sim
module Profiler = Pdq_engine.Profiler
module Units = Pdq_engine.Units
module Trace = Pdq_telemetry.Trace
module Metrics = Pdq_telemetry.Metrics
module Console = Pdq_telemetry.Console
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Builder = Pdq_topo.Builder

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a)

let check_float msg expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Trace bus and sinks *)

let test_severity () =
  Alcotest.(check bool) "warn >= debug" true
    (Trace.severity_geq Trace.Warn Trace.Debug);
  Alcotest.(check bool) "trace < debug" false
    (Trace.severity_geq Trace.Trace Trace.Debug);
  Alcotest.(check bool) "reflexive" true
    (Trace.severity_geq Trace.Info Trace.Info);
  Alcotest.(check string) "name" "debug" (Trace.severity_name Trace.Debug);
  Alcotest.(check string) "rx is trace-level" "trace"
    (Trace.severity_name
       (Trace.severity_of_event (Trace.Flow_rx { flow = 0; bytes = 1 })));
  Alcotest.(check string) "drop is warn-level" "warn"
    (Trace.severity_name
       (Trace.severity_of_event
          (Trace.Packet_dropped { link = 0; cause = Trace.Loss })))

let test_event_json () =
  Alcotest.(check string) "flow_paused"
    {|{"t":0.0012,"ev":"flow_paused","flow":3,"by":2}|}
    (Trace.event_to_json ~time:0.0012
       (Trace.Flow_paused { flow = 3; by = 2; preempted_by = None }));
  Alcotest.(check string) "flow_paused with preempter"
    {|{"t":0.0012,"ev":"flow_paused","flow":3,"by":2,"preempted_by":7}|}
    (Trace.event_to_json ~time:0.0012
       (Trace.Flow_paused { flow = 3; by = 2; preempted_by = Some 7 }));
  Alcotest.(check string) "flow_admitted with deadline"
    {|{"t":0,"ev":"flow_admitted","flow":1,"src":2,"dst":3,"size":1000,"deadline":0.02}|}
    (Trace.event_to_json ~time:0.
       (Trace.Flow_admitted
          { flow = 1; src = 2; dst = 3; size = 1000; deadline = Some 0.02 }));
  Alcotest.(check string) "packet_dropped cause name"
    {|{"t":1,"ev":"packet_dropped","link":4,"cause":"overflow"}|}
    (Trace.event_to_json ~time:1.
       (Trace.Packet_dropped { link = 4; cause = Trace.Overflow }));
  Alcotest.(check string) "fault desc is escaped"
    {|{"t":2,"ev":"fault","desc":"a\"b"}|}
    (Trace.event_to_json ~time:2. (Trace.Fault { desc = {|a"b|} }))

let test_null_bus () =
  Alcotest.(check bool) "null inactive" false (Trace.active Trace.null);
  Trace.emit Trace.null (Trace.Flow_started { flow = 0 });
  Alcotest.(check int) "null counts nothing" 0 (Trace.events_seen Trace.null);
  let empty = Trace.create ~clock:(fun () -> 0.) ~sinks:[] in
  Alcotest.(check bool) "no sinks = null" false (Trace.active empty)

let test_memory_ring () =
  let clock = ref 0. in
  let mem = Trace.memory ~capacity:3 () in
  let bus = Trace.create ~clock:(fun () -> !clock) ~sinks:[ mem ] in
  Alcotest.(check bool) "active" true (Trace.active bus);
  for i = 1 to 5 do
    clock := float_of_int i;
    Trace.emit bus (Trace.Flow_started { flow = i })
  done;
  Alcotest.(check int) "emitted 5" 5 (Trace.events_seen bus);
  let evs = Trace.memory_events mem in
  Alcotest.(check int) "ring keeps 3" 3 (List.length evs);
  (match evs with
  | (t, Trace.Flow_started { flow }) :: _ ->
      check_float "oldest kept is #3" 3. t;
      Alcotest.(check int) "flow id" 3 flow
  | _ -> Alcotest.fail "unexpected ring contents");
  Alcotest.check_raises "jsonl sink has no memory"
    (Invalid_argument "Trace.memory_events: not a memory sink") (fun () ->
      ignore (Trace.memory_events (Trace.jsonl stdout)))

let with_temp_file f =
  let path = Filename.temp_file "pdq_telemetry" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_jsonl_sink () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let bus = Trace.create ~clock:(fun () -> 0.5) ~sinks:[ Trace.jsonl oc ] in
      Trace.emit bus (Trace.Flow_started { flow = 7 });
      Trace.emit bus (Trace.Flow_completed { flow = 7; fct = 0.25 });
      close_out oc;
      let lines = read_lines path in
      Alcotest.(check int) "two lines" 2 (List.length lines);
      Alcotest.(check string) "first line"
        {|{"t":0.5,"ev":"flow_started","flow":7}|}
        (List.nth lines 0);
      List.iter
        (fun l ->
          Alcotest.(check bool) "looks like a JSON object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

let test_console_sink_filters () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let bus =
        Trace.create
          ~clock:(fun () -> 0.)
          ~sinks:[ Trace.console ~min_severity:Trace.Info oc ]
      in
      (* Below threshold: dropped. At/above: printed. *)
      Trace.emit bus (Trace.Flow_rx { flow = 1; bytes = 100 });
      Trace.emit bus (Trace.Flow_paused { flow = 1; by = 2; preempted_by = None });
      Trace.emit bus (Trace.Flow_completed { flow = 1; fct = 0.1 });
      Trace.emit bus (Trace.Fault { desc = "fault.unroutable" });
      close_out oc;
      let lines = read_lines path in
      Alcotest.(check int) "only info and warn printed" 2 (List.length lines);
      Alcotest.(check bool) "severity prefix" true
        (String.length (List.hd lines) > 6
        && String.sub (List.hd lines) 0 6 = "[info]"))

let test_console_threshold () =
  Console.set_threshold (Some Trace.Debug);
  Alcotest.(check bool) "warn enabled" true (Console.enabled Trace.Warn);
  Alcotest.(check bool) "debug enabled" true (Console.enabled Trace.Debug);
  Alcotest.(check bool) "trace filtered" false (Console.enabled Trace.Trace);
  Console.set_threshold None;
  Alcotest.(check bool) "disabled" false (Console.enabled Trace.Warn)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_instruments () =
  let m = Metrics.create () in
  let c = Metrics.counter m "drops" in
  Metrics.incr c ();
  Metrics.incr c ~by:4 ();
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "same handle by name" 5
    (Metrics.counter_value (Metrics.counter m "drops"));
  let g = Metrics.gauge m "depth" in
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g 1.5;
  check_float "gauge holds last" 1.5 (Metrics.gauge_value g);
  let h = Metrics.histogram m "fct" in
  Alcotest.(check bool) "empty histogram" true
    (Metrics.histogram_summary h = None);
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  (match Metrics.histogram_summary h with
  | Some (n, mean, p50, _p90, _p99, max) ->
      Alcotest.(check int) "n" 4 n;
      check_float "mean" 2.5 mean;
      check_float "p50" 2.5 p50;
      check_float "max" 4. max
  | None -> Alcotest.fail "summary expected");
  Metrics.add_counters m [ ("drops", 2); ("aborts", 1) ];
  Alcotest.(check (list (pair string int)))
    "counters merged and sorted"
    [ ("aborts", 1); ("drops", 7) ]
    (Metrics.counters m)

let test_metrics_series () =
  let m = Metrics.create () in
  Metrics.sample m ~time:0. ~name:"link.0.util" ~value:0.5;
  Metrics.sample m ~time:1. ~name:"link.0.util" ~value:0.75;
  Metrics.sample m ~time:0. ~name:"link.1.util" ~value:0.;
  Alcotest.(check (list string))
    "names sorted"
    [ "link.0.util"; "link.1.util" ]
    (Metrics.series_names m);
  let s = Metrics.series m ~name:"link.0.util" in
  Alcotest.(check int) "points" 2 (Array.length s);
  check_float "second value" 0.75 (snd s.(1));
  Alcotest.(check int) "unknown series empty" 0
    (Array.length (Metrics.series m ~name:"nope"))

let test_metrics_export () =
  let m = Metrics.create () in
  Metrics.sample m ~time:0.001 ~name:"link.0.util" ~value:0.5;
  Metrics.incr (Metrics.counter m "drop.loss") ~by:3 ();
  Metrics.observe (Metrics.histogram m "flow.fct_ms") 12.;
  with_temp_file (fun path ->
      let oc = open_out path in
      Metrics.write_csv m oc;
      close_out oc;
      let lines = read_lines path in
      Alcotest.(check string) "csv header" "kind,time,name,value"
        (List.hd lines);
      Alcotest.(check bool) "csv has sample row" true
        (List.exists
           (fun l -> String.length l >= 6 && String.sub l 0 6 = "sample")
           lines);
      Alcotest.(check bool) "csv has counter row" true
        (List.exists
           (fun l ->
             String.length l >= 7 && String.sub l 0 7 = "counter")
           lines));
  with_temp_file (fun path ->
      let oc = open_out path in
      Metrics.write_jsonl m oc;
      close_out oc;
      let lines = read_lines path in
      Alcotest.(check bool) "jsonl non-empty" true (lines <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) "JSON object per line" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

(* ------------------------------------------------------------------ *)
(* Runner integration *)

let bottleneck_run ?(telemetry = Runner.no_telemetry)
    ?(proto = Runner.Pdq Pdq_core.Config.full) ?(senders = 2)
    ?(sizes = [ 30_000; 60_000 ]) () =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders () in
  let hosts = built.Builder.hosts in
  let specs =
    List.mapi
      (fun i size ->
        { Context.src = hosts.(i); dst = rx; size; deadline = None; start = 0. })
      sizes
  in
  let options = { Runner.default_options with Runner.telemetry } in
  Runner.execute ~options ~topo:built.Builder.topo proto specs

let fcts r =
  Array.to_list (Array.map (fun (f : Runner.flow_result) -> f.Runner.fct) r.Runner.flows)

(* Compact projection of the control-plane events (everything except
   the per-packet [Flow_rx] / [Flow_rate_set] chatter), used by the
   golden-trace test. *)
let tag = function
  | Trace.Flow_admitted { flow; _ } -> Some (Printf.sprintf "admitted:%d" flow)
  | Trace.Flow_started { flow } -> Some (Printf.sprintf "started:%d" flow)
  | Trace.Flow_paused { flow; by; _ } ->
      Some (Printf.sprintf "paused:%d@%d" flow by)
  | Trace.Flow_resumed { flow; _ } -> Some (Printf.sprintf "resumed:%d" flow)
  | Trace.Flow_completed { flow; _ } ->
      Some (Printf.sprintf "completed:%d" flow)
  | Trace.Flow_terminated { flow } ->
      Some (Printf.sprintf "terminated:%d" flow)
  | Trace.Flow_aborted { flow; _ } -> Some (Printf.sprintf "aborted:%d" flow)
  | Trace.Switch_flushed { switch } ->
      Some (Printf.sprintf "flushed:%d" switch)
  | Trace.Switch_rebuilt { switch } ->
      Some (Printf.sprintf "rebuilt:%d" switch)
  | Trace.Packet_dropped { cause; _ } ->
      Some
        (Printf.sprintf "dropped:%s"
           (match cause with
           | Trace.Loss -> "loss"
           | Trace.Overflow -> "overflow"
           | Trace.Link_down -> "down"
           | Trace.Stale_route -> "stale"))
  | Trace.Flow_rx _ | Trace.Flow_rate_set _ -> None
  (* Per-flow lifecycle detail consumed by the forensics layer, not
     part of the compact control-plane projection. *)
  | Trace.Flow_established _ | Trace.Flow_retransmit _ -> None
  | Trace.Fault _ -> Some "fault"
  | Trace.Adversary _ -> Some "adversary"
  (* Supervisor lifecycle events ride a wall-clock bus, never a
     simulation trace. *)
  | Trace.Sweep_task _ -> None

let test_golden_trace () =
  let mem = Trace.memory () in
  let r =
    bottleneck_run
      ~telemetry:{ Runner.no_telemetry with Runner.sinks = [ mem ] }
      ()
  in
  Alcotest.(check int) "both flows completed" 2 r.Runner.completed;
  let got =
    List.filter_map (fun (_, ev) -> tag ev) (Trace.memory_events mem)
  in
  (* Fixed seed, fixed workload: the 30 KB flow runs to completion
     while the switch pauses the 60 KB flow, which resumes and finishes
     second — the paper's one-at-a-time schedule, as telemetry. *)
  let expected =
    [
      "admitted:0";
      "admitted:1";
      "started:0";
      "started:1";
      "paused:1@0";
      "resumed:1";
      "completed:0";
      "completed:1";
    ]
  in
  if got <> expected then
    Alcotest.failf "golden trace mismatch, got:\n%s"
      (String.concat "; " got);
  (* Timestamps never go backwards. *)
  let _ =
    List.fold_left
      (fun prev (t, _) ->
        if t < prev then Alcotest.failf "time went backwards: %g < %g" t prev;
        t)
      0. (Trace.memory_events mem)
  in
  ()

let test_trace_determinism () =
  let run () =
    let mem = Trace.memory () in
    let r =
      bottleneck_run
        ~telemetry:{ Runner.no_telemetry with Runner.sinks = [ mem ] }
        ~senders:3
        ~sizes:[ 40_000; 80_000; 120_000 ]
        ()
    in
    (Trace.memory_events mem, fcts r)
  in
  let e1, f1 = run () in
  let e2, f2 = run () in
  Alcotest.(check bool) "identical event streams" true (e1 = e2);
  Alcotest.(check bool) "identical fcts" true (f1 = f2);
  Alcotest.(check bool) "stream non-empty" true (e1 <> [])

let test_sinks_do_not_perturb () =
  let bare = bottleneck_run () in
  let mem = Trace.memory () in
  let m = Metrics.create () in
  let instrumented =
    bottleneck_run
      ~telemetry:
        { Runner.no_telemetry with Runner.sinks = [ mem ]; metrics = Some m; metrics_every = 1e-4 }
      ()
  in
  Alcotest.(check bool) "identical flow results" true
    (fcts bare = fcts instrumented);
  check_float "identical sim end" bare.Runner.sim_end
    instrumented.Runner.sim_end;
  Alcotest.(check bool) "but events were recorded" true
    (Trace.memory_events mem <> [])

let test_metrics_probe () =
  let m = Metrics.create () in
  let r =
    bottleneck_run
      ~telemetry:
        { Runner.no_telemetry with metrics = Some m; metrics_every = 2e-4 }
      ~senders:3
      ~sizes:[ 100_000; 100_000; 100_000 ]
      ()
  in
  Alcotest.(check int) "all completed" 3 r.Runner.completed;
  let names = Metrics.series_names m in
  Alcotest.(check bool) "has utilization series" true
    (List.exists
       (fun n -> n = Metrics.Name.link_util 0)
       names);
  (* Every link of the topology is probed. *)
  let util_series =
    List.filter
      (fun n ->
        String.length n > 5
        && String.sub n 0 5 = "link."
        && Filename.check_suffix n ".util")
      names
  in
  Alcotest.(check bool) "several links probed" true
    (List.length util_series >= 2);
  (* A packet whose serialization straddles a probe boundary is
     credited to the window it completes in, so a short window can read
     slightly above 1; anything past ~10% is a bug. *)
  List.iter
    (fun n ->
      Array.iter
        (fun (_, v) ->
          if v < -1e-9 || v > 1.1 then
            Alcotest.failf "utilization out of range on %s: %g" n v)
        (Metrics.series m ~name:n))
    util_series;
  (* The bottleneck carries traffic: its utilization peaks near 1. *)
  let bottleneck_util =
    List.fold_left
      (fun acc n ->
        Array.fold_left (fun a (_, v) -> max a v) acc (Metrics.series m ~name:n))
      0. util_series
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak utilization %.3f > 0.5" bottleneck_util)
    true (bottleneck_util > 0.5);
  (* With three competing PDQ flows, somebody is paused at some probe. *)
  let paused_seen =
    List.exists
      (fun n ->
        String.length n > 5
        && String.sub n 0 5 = "port."
        && Filename.check_suffix n ".flows_paused"
        && Array.exists (fun (_, v) -> v > 0.) (Metrics.series m ~name:n))
      names
  in
  Alcotest.(check bool) "paused flows observed" true paused_seen;
  (* Post-run fill: the FCT histogram matches completions. *)
  (match Metrics.histogram_summary (Metrics.histogram m Metrics.Name.flow_fct_ms) with
  | Some (n, mean_ms, _, _, _, _) ->
      Alcotest.(check int) "fct histogram count" 3 n;
      if not (feq ~eps:1e-6 (1000. *. r.Runner.mean_fct) mean_ms) then
        Alcotest.failf "fct histogram mean %.6g vs %.6g" mean_ms
          (1000. *. r.Runner.mean_fct)
  | None -> Alcotest.fail "fct histogram missing")

let protocols =
  [
    ("pdq", Runner.Pdq Pdq_core.Config.full);
    ("mpdq", Runner.mpdq ~subflows:2 ());
    ("rcp", Runner.Rcp);
    ("d3", Runner.D3);
    ("tcp", Runner.Tcp);
  ]

let test_all_protocols_emit () =
  List.iter
    (fun (name, proto) ->
      let mem = Trace.memory () in
      let m = Metrics.create () in
      let r =
        bottleneck_run
          ~telemetry:
            { Runner.no_telemetry with Runner.sinks = [ mem ]; metrics = Some m; metrics_every = 5e-4 }
          ~proto
          ~sizes:[ 30_000; 60_000 ]
          ()
      in
      if r.Runner.completed <> 2 then
        Alcotest.failf "%s: %d/2 flows completed" name r.Runner.completed;
      let evs = Trace.memory_events mem in
      let completed_events =
        List.length
          (List.filter
             (fun (_, ev) ->
               match ev with Trace.Flow_completed _ -> true | _ -> false)
             evs)
      in
      if completed_events <> 2 then
        Alcotest.failf "%s: %d completion events" name completed_events;
      if Metrics.series_names m = [] then
        Alcotest.failf "%s: metrics probe recorded nothing" name)
    protocols

let test_profiler_counts () =
  let p = Profiler.enable_global () in
  Profiler.reset p;
  let baseline = bottleneck_run () in
  Profiler.disable_global ();
  Alcotest.(check bool) "events executed" true (Profiler.events_executed p > 0);
  Alcotest.(check bool) "queue high water" true (Profiler.queue_high_water p > 0);
  Alcotest.(check bool) "sim time advanced" true (Profiler.sim_seconds p > 0.);
  Alcotest.(check bool) "cpu time nonnegative" true (Profiler.cpu_seconds p >= 0.);
  let kinds = List.map fst (Profiler.kinds p) in
  Alcotest.(check bool) "link.tx kind present" true
    (List.mem "link.tx" kinds);
  Alcotest.(check bool) "pdq kinds present" true
    (List.exists
       (fun k -> String.length k > 4 && String.sub k 0 4 = "pdq.")
       kinds);
  (* Profiling must not change results. *)
  let unprofiled = bottleneck_run () in
  Alcotest.(check bool) "profiled run identical" true
    (fcts baseline = fcts unprofiled);
  (* And the report renders. *)
  let report = Format.asprintf "%a" Profiler.pp_report p in
  Alcotest.(check bool) "report non-empty" true (String.length report > 0)

let suites =
  [
    ( "telemetry.trace",
      [
        Alcotest.test_case "severity order" `Quick test_severity;
        Alcotest.test_case "event json" `Quick test_event_json;
        Alcotest.test_case "null bus" `Quick test_null_bus;
        Alcotest.test_case "memory ring" `Quick test_memory_ring;
        Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        Alcotest.test_case "console severity filter" `Quick
          test_console_sink_filters;
        Alcotest.test_case "console threshold" `Quick test_console_threshold;
      ] );
    ( "telemetry.metrics",
      [
        Alcotest.test_case "instruments" `Quick test_metrics_instruments;
        Alcotest.test_case "series" `Quick test_metrics_series;
        Alcotest.test_case "csv/jsonl export" `Quick test_metrics_export;
      ] );
    ( "telemetry.runner",
      [
        Alcotest.test_case "golden trace" `Quick test_golden_trace;
        Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
        Alcotest.test_case "sinks do not perturb" `Quick
          test_sinks_do_not_perturb;
        Alcotest.test_case "metrics probe" `Quick test_metrics_probe;
        Alcotest.test_case "all protocols emit" `Quick
          test_all_protocols_emit;
        Alcotest.test_case "profiler" `Quick test_profiler_counts;
      ] );
  ]
