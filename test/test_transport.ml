(* Integration tests: full packet-level simulations on small
   topologies, checking protocol behaviour end to end. *)

module Units = Pdq_engine.Units
module Sim = Pdq_engine.Sim
module Topology = Pdq_net.Topology
module Builder = Pdq_topo.Builder
module Runner = Pdq_transport.Runner
module Context = Pdq_transport.Context
module Config = Pdq_core.Config

let kb = Units.kbyte

(* One simulated transfer takes ~size/1Gbps; generous horizon. *)
let opts = { Runner.default_options with Runner.horizon = 5. }

let spec ?deadline ?(start = 0.) ~src ~dst ~size () =
  { Context.src; dst; size; deadline; start }

let run_single_bottleneck ?(senders = 4) ?(options = opts) protocol specs_of =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders () in
  let result =
    Runner.execute ~options ~topo:built.Builder.topo protocol
      (specs_of built.Builder.hosts rx)
  in
  result

let fct_exn (r : Runner.result) i =
  match r.Runner.flows.(i).Runner.fct with
  | Some f -> f
  | None -> Alcotest.failf "flow %d did not complete" i

(* ------------------------------------------------------------------ *)
(* Single-flow sanity for every protocol *)

let single_flow_completes protocol () =
  let size = kb 500. in
  let r =
    run_single_bottleneck protocol (fun hosts rx ->
        [ spec ~src:hosts.(0) ~dst:rx ~size () ])
  in
  Alcotest.(check int) "completed" 1 r.Runner.completed;
  let fct = fct_exn r 0 in
  (* Raw transmission of 500 KB at 1 Gbps is 4 ms; allow protocol
     overhead (handshake, headers) but require sane efficiency. *)
  Alcotest.(check bool)
    (Printf.sprintf "fct %.4f in (0.004, 0.02)" fct)
    true
    (fct > 0.004 && fct < 0.02)

(* ------------------------------------------------------------------ *)
(* PDQ behaviour *)

let test_pdq_sjf_ordering () =
  (* Two simultaneous flows of different size: PDQ must preempt so the
     short one finishes first, at roughly its solo completion time. *)
  let short = kb 100. and long = kb 1000. in
  let r =
    run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size:long ();
          spec ~src:hosts.(1) ~dst:rx ~size:short ();
        ])
  in
  Alcotest.(check int) "both completed" 2 r.Runner.completed;
  let fct_long = fct_exn r 0 and fct_short = fct_exn r 1 in
  Alcotest.(check bool)
    (Printf.sprintf "short (%.4f) < long (%.4f)" fct_short fct_long)
    true (fct_short < fct_long);
  (* The short flow should be barely slowed by the long one. *)
  Alcotest.(check bool)
    (Printf.sprintf "short flow near solo time (%.4f)" fct_short)
    true (fct_short < 0.004);
  (* Work conservation: total time ~ sum of raw times (8.8 ms) plus
     modest overhead. *)
  Alcotest.(check bool)
    (Printf.sprintf "long finishes near 9.6ms (%.4f)" fct_long)
    true (fct_long < 0.015)

let test_pdq_preemption_of_running_flow () =
  (* A long flow running alone is preempted by a short flow arriving
     later: the short flow's FCT stays near solo. *)
  let r =
    run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size:(kb 2000.) ();
          spec ~src:hosts.(1) ~dst:rx ~size:(kb 50.) ~start:0.005 ();
        ])
  in
  Alcotest.(check int) "both completed" 2 r.Runner.completed;
  let fct_short = fct_exn r 1 in
  Alcotest.(check bool)
    (Printf.sprintf "preempting short flow is fast (%.4f)" fct_short)
    true (fct_short < 0.003)

let test_pdq_deadline_met () =
  let r =
    run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
        [ spec ~src:hosts.(0) ~dst:rx ~size:(kb 100.) ~deadline:0.02 () ])
  in
  Alcotest.(check bool) "met deadline" true r.Runner.flows.(0).Runner.met_deadline;
  Alcotest.(check bool) "AT = 1" true (r.Runner.application_throughput = 1.)

let test_pdq_early_termination () =
  (* Two flows, same deadline, only one can make it: Early Termination
     should kill exactly one instead of missing both. *)
  let size = kb 1200. in
  (* Raw time ~9.6 ms each; deadline 12 ms fits one flow only. *)
  let r =
    run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size ~deadline:0.012 ();
          spec ~src:hosts.(1) ~dst:rx ~size ~deadline:0.012 ();
        ])
  in
  let met =
    Array.to_list r.Runner.flows
    |> List.filter (fun (f : Runner.flow_result) -> f.Runner.met_deadline)
    |> List.length
  in
  let terminated =
    Array.to_list r.Runner.flows
    |> List.filter (fun (f : Runner.flow_result) -> f.Runner.terminated)
    |> List.length
  in
  Alcotest.(check int) "one flow meets its deadline" 1 met;
  Alcotest.(check bool) "the other was early-terminated" true (terminated >= 1)

let test_pdq_variants_all_complete () =
  List.iter
    (fun config ->
      let r =
        run_single_bottleneck (Runner.Pdq config) (fun hosts rx ->
            [
              spec ~src:hosts.(0) ~dst:rx ~size:(kb 200.) ();
              spec ~src:hosts.(1) ~dst:rx ~size:(kb 300.) ();
              spec ~src:hosts.(2) ~dst:rx ~size:(kb 400.) ();
            ])
      in
      Alcotest.(check int)
        (Printf.sprintf "%s completes all" (Config.name config))
        3 r.Runner.completed)
    [ Config.basic; Config.es; Config.es_et; Config.full ]

let test_pdq_resilient_to_loss () =
  let sim = Sim.create () in
  let built, rx = Builder.single_bottleneck ~sim ~senders:2 () in
  (* Find the bottleneck (switch -> receiver) links, both directions. *)
  let bottleneck_links =
    let switch = 0 in
    [
      Pdq_net.Link.id (Topology.link_to built.Builder.topo ~src:switch ~dst:rx);
      Pdq_net.Link.id (Topology.link_to built.Builder.topo ~src:rx ~dst:switch);
    ]
  in
  let options =
    { opts with Runner.loss = Some (0.02, bottleneck_links); horizon = 5. }
  in
  let r =
    Runner.execute ~options ~topo:built.Builder.topo (Runner.Pdq Config.full)
      [
        spec ~src:built.Builder.hosts.(0) ~dst:rx ~size:(kb 300.) ();
        spec ~src:built.Builder.hosts.(1) ~dst:rx ~size:(kb 300.) ();
      ]
  in
  Alcotest.(check int) "completes despite 2% loss" 2 r.Runner.completed

(* ------------------------------------------------------------------ *)
(* Baselines *)

let test_rcp_fair_sharing () =
  (* Two identical simultaneous flows finish at roughly the same time,
     at about twice the solo duration (processor sharing). *)
  let size = kb 500. in
  let r =
    run_single_bottleneck Runner.Rcp (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size ();
          spec ~src:hosts.(1) ~dst:rx ~size ();
        ])
  in
  Alcotest.(check int) "both completed" 2 r.Runner.completed;
  let f0 = fct_exn r 0 and f1 = fct_exn r 1 in
  Alcotest.(check bool)
    (Printf.sprintf "similar completion times (%.4f vs %.4f)" f0 f1)
    true
    (abs_float (f0 -. f1) < 0.25 *. max f0 f1);
  Alcotest.(check bool)
    (Printf.sprintf "both near 2x solo (%.4f)" (max f0 f1))
    true
    (max f0 f1 > 0.007 && max f0 f1 < 0.02)

let test_pdq_beats_rcp_on_mean_fct () =
  (* The headline claim on a small aggregation workload. *)
  let sizes = [ 100.; 200.; 400.; 800. ] in
  let mk proto =
    run_single_bottleneck proto (fun hosts rx ->
        List.mapi (fun i s -> spec ~src:hosts.(i) ~dst:rx ~size:(kb s) ()) sizes)
  in
  let pdq = mk (Runner.Pdq Config.full) and rcp = mk Runner.Rcp in
  Alcotest.(check int) "pdq all done" 4 pdq.Runner.completed;
  Alcotest.(check int) "rcp all done" 4 rcp.Runner.completed;
  Alcotest.(check bool)
    (Printf.sprintf "PDQ mean FCT %.4f < RCP %.4f" pdq.Runner.mean_fct
       rcp.Runner.mean_fct)
    true
    (pdq.Runner.mean_fct < rcp.Runner.mean_fct)

let test_d3_deadline_flow () =
  let r =
    run_single_bottleneck Runner.D3 (fun hosts rx ->
        [ spec ~src:hosts.(0) ~dst:rx ~size:(kb 100.) ~deadline:0.05 () ])
  in
  Alcotest.(check int) "completed" 1 r.Runner.completed;
  Alcotest.(check bool) "met deadline" true r.Runner.flows.(0).Runner.met_deadline

let test_d3_arrival_order_dependence () =
  (* Figure 1d: an earlier large-deadline flow reserves bandwidth and
     starves a later, tighter flow. Sizes/deadlines scaled from the
     motivating example (1 unit = 1 MByte at 1 Gbps => 8 ms). *)
  let mb x = Units.mbyte x in
  let r =
    run_single_bottleneck Runner.D3 (fun hosts rx ->
        [
          (* fB first: size 2, deadline 4 units. *)
          spec ~src:hosts.(0) ~dst:rx ~size:(mb 2.) ~deadline:0.032 ();
          (* fA second: size 1, deadline 1 unit - D3 should miss it. *)
          spec ~src:hosts.(1) ~dst:rx ~size:(mb 1.) ~deadline:0.008 ~start:1e-4 ();
          (* fC: size 3, deadline 6 units. *)
          spec ~src:hosts.(2) ~dst:rx ~size:(mb 3.) ~deadline:0.048 ~start:2e-4 ();
        ])
  in
  Alcotest.(check bool) "D3 misses the tight later deadline" false
    r.Runner.flows.(1).Runner.met_deadline

let test_pdq_fig1_all_deadlines_met () =
  (* Same scenario under PDQ: the EDF schedule meets all three
     deadlines. The fluid-model deadlines of Fig. 1 (8/32/48 ms) get
     ~25% slack for real header overhead, handshakes and the rate
     controller's queue-draining margin. *)
  let mb x = Units.mbyte x in
  let r =
    run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size:(mb 2.) ~deadline:0.040 ();
          spec ~src:hosts.(1) ~dst:rx ~size:(mb 1.) ~deadline:0.010 ~start:1e-4 ();
          spec ~src:hosts.(2) ~dst:rx ~size:(mb 3.) ~deadline:0.060 ~start:2e-4 ();
        ])
  in
  Array.iteri
    (fun i (f : Runner.flow_result) ->
      Alcotest.(check bool) (Printf.sprintf "flow %d meets deadline" i) true
        f.Runner.met_deadline)
    r.Runner.flows

let test_pdq_size_estimation_mode () =
  (* §5.6 at packet level: senders advertise a running size estimate
     instead of the true remaining size. Everything must still
     complete, and since the estimate grows with bytes sent, flows of
     very different size still roughly serialize short-first. *)
  let r =
    run_single_bottleneck
      (Runner.Pdq_estimated { config = Config.full; quantum = 50_000 })
      (fun hosts rx ->
        [
          spec ~src:hosts.(0) ~dst:rx ~size:(kb 800.) ();
          spec ~src:hosts.(1) ~dst:rx ~size:(kb 60.) ();
        ])
  in
  Alcotest.(check int) "both complete" 2 r.Runner.completed;
  let fct_long = fct_exn r 0 and fct_short = fct_exn r 1 in
  Alcotest.(check bool)
    (Printf.sprintf "short-ish first (%.4f < %.4f)" fct_short fct_long)
    true (fct_short < fct_long)

let test_tcp_incast_degrades () =
  (* Many synchronized small flows into one receiver: TCP suffers;
     it should still eventually complete everything. *)
  let n = 8 in
  let r =
    run_single_bottleneck ~senders:n Runner.Tcp (fun hosts rx ->
        List.init n (fun i -> spec ~src:hosts.(i) ~dst:rx ~size:(kb 64.) ()))
  in
  Alcotest.(check int) "all complete eventually" n r.Runner.completed

(* ------------------------------------------------------------------ *)
(* M-PDQ *)

let test_mpdq_completes_on_bcube () =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  let hosts = built.Builder.hosts in
  let r =
    Runner.execute ~options:opts ~topo:built.Builder.topo
      (Runner.mpdq ~subflows:3 ())
      [ spec ~src:hosts.(0) ~dst:hosts.(15) ~size:(kb 500.) () ]
  in
  Alcotest.(check int) "completed" 1 r.Runner.completed

let test_mpdq_multiple_flows () =
  let sim = Sim.create () in
  let built = Builder.bcube ~sim ~n:2 ~k:3 () in
  let hosts = built.Builder.hosts in
  let r =
    Runner.execute ~options:opts ~topo:built.Builder.topo
      (Runner.mpdq ~subflows:4 ())
      [
        spec ~src:hosts.(0) ~dst:hosts.(15) ~size:(kb 300.) ();
        spec ~src:hosts.(3) ~dst:hosts.(12) ~size:(kb 300.) ();
        spec ~src:hosts.(5) ~dst:hosts.(10) ~size:(kb 300.) ();
      ]
  in
  Alcotest.(check int) "all completed" 3 r.Runner.completed

(* ------------------------------------------------------------------ *)
(* Cross-topology smoke *)

let test_pdq_on_tree_patterns () =
  let sim = Sim.create () in
  let built = Builder.single_rooted_tree ~sim () in
  let hosts = built.Builder.hosts in
  let n = Array.length hosts in
  (* Stride(1) permutation across the tree. *)
  let specs =
    List.init n (fun i ->
        spec ~src:hosts.(i) ~dst:hosts.((i + 1) mod n) ~size:(kb 100.) ())
  in
  let r =
    Runner.execute ~options:opts ~topo:built.Builder.topo (Runner.Pdq Config.full)
      specs
  in
  Alcotest.(check int) "all stride flows complete" n r.Runner.completed

let test_determinism () =
  let run_once () =
    let r =
      run_single_bottleneck (Runner.Pdq Config.full) (fun hosts rx ->
          [
            spec ~src:hosts.(0) ~dst:rx ~size:(kb 150.) ();
            spec ~src:hosts.(1) ~dst:rx ~size:(kb 250.) ();
          ])
    in
    Array.to_list (Array.map (fun (f : Runner.flow_result) -> f.Runner.fct) r.Runner.flows)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let suites =
  [
    ( "transport.single_flow",
      [
        Alcotest.test_case "PDQ(Full)" `Quick
          (single_flow_completes (Runner.Pdq Config.full));
        Alcotest.test_case "PDQ(Basic)" `Quick
          (single_flow_completes (Runner.Pdq Config.basic));
        Alcotest.test_case "RCP" `Quick (single_flow_completes Runner.Rcp);
        Alcotest.test_case "D3" `Quick (single_flow_completes Runner.D3);
        Alcotest.test_case "TCP" `Quick (single_flow_completes Runner.Tcp);
      ] );
    ( "transport.pdq",
      [
        Alcotest.test_case "SJF ordering" `Quick test_pdq_sjf_ordering;
        Alcotest.test_case "preemption mid-flight" `Quick
          test_pdq_preemption_of_running_flow;
        Alcotest.test_case "deadline met" `Quick test_pdq_deadline_met;
        Alcotest.test_case "early termination" `Quick test_pdq_early_termination;
        Alcotest.test_case "all variants complete" `Quick
          test_pdq_variants_all_complete;
        Alcotest.test_case "resilient to loss" `Quick test_pdq_resilient_to_loss;
        Alcotest.test_case "Fig1: PDQ meets all deadlines" `Quick
          test_pdq_fig1_all_deadlines_met;
        Alcotest.test_case "size-estimation mode (5.6)" `Quick
          test_pdq_size_estimation_mode;
      ] );
    ( "transport.baselines",
      [
        Alcotest.test_case "RCP fair sharing" `Quick test_rcp_fair_sharing;
        Alcotest.test_case "PDQ beats RCP mean FCT" `Quick
          test_pdq_beats_rcp_on_mean_fct;
        Alcotest.test_case "D3 deadline flow" `Quick test_d3_deadline_flow;
        Alcotest.test_case "D3 arrival-order pathology (Fig 1d)" `Quick
          test_d3_arrival_order_dependence;
        Alcotest.test_case "TCP incast completes" `Quick test_tcp_incast_degrades;
      ] );
    ( "transport.mpdq",
      [
        Alcotest.test_case "completes on BCube" `Quick test_mpdq_completes_on_bcube;
        Alcotest.test_case "multiple flows" `Quick test_mpdq_multiple_flows;
      ] );
    ( "transport.misc",
      [
        Alcotest.test_case "stride on tree" `Quick test_pdq_on_tree_patterns;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
  ]
