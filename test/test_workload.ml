(* Tests for pdq_workload: size/deadline distributions, traffic
   patterns, arrival processes. *)

module Rng = Pdq_engine.Rng
module Size_dist = Pdq_workload.Size_dist
module Deadline_dist = Pdq_workload.Deadline_dist
module Pattern = Pdq_workload.Pattern
module Arrivals = Pdq_workload.Arrivals

let sample_mean dist n seed =
  let rng = Rng.create seed in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. float_of_int (Size_dist.sample dist rng)
  done;
  !acc /. float_of_int n

let test_uniform_paper () =
  let dist = Size_dist.uniform_paper ~mean_bytes:100_000 in
  let rng = Rng.create 1 in
  for _ = 1 to 5_000 do
    let s = Size_dist.sample dist rng in
    if s < 2_000 || s > 198_000 then Alcotest.failf "out of [2KB,198KB]: %d" s
  done;
  let m = sample_mean dist 20_000 2 in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~100KB (got %.0f)" m)
    true
    (abs_float (m -. 100_000.) < 2_500.)

let test_pareto_tail () =
  let dist = Size_dist.pareto ~tail_index:1.1 ~mean_bytes:100_000 () in
  let rng = Rng.create 3 in
  let n = 20_000 in
  let big = ref 0 and small = ref 0 in
  for _ = 1 to n do
    let s = Size_dist.sample dist rng in
    if s > 1_000_000 then incr big;
    if s < 50_000 then incr small
  done;
  Alcotest.(check bool) "has elephants" true (!big > 10);
  Alcotest.(check bool) "mostly mice" true (!small > n / 2)

let test_vl2_shape () =
  let dist = Size_dist.vl2 () in
  let rng = Rng.create 4 in
  let n = 30_000 in
  let sizes = Array.init n (fun _ -> Size_dist.sample dist rng) in
  let shorts = Array.to_list sizes |> List.filter (fun s -> s < 100_000) in
  let bytes_total =
    Array.fold_left (fun acc s -> acc +. float_of_int s) 0. sizes
  in
  let bytes_long =
    Array.fold_left
      (fun acc s -> if s >= 1_000_000 then acc +. float_of_int s else acc)
      0. sizes
  in
  (* Mice dominate the flow count; elephants dominate the bytes. *)
  Alcotest.(check bool) "most flows are small" true
    (List.length shorts > (3 * n) / 4);
  Alcotest.(check bool) "most bytes from elephants" true
    (bytes_long > 0.5 *. bytes_total)

let test_fixed () =
  let dist = Size_dist.fixed 1234 in
  let rng = Rng.create 5 in
  Alcotest.(check int) "fixed" 1234 (Size_dist.sample dist rng)

let test_deadline_floor () =
  let d = Deadline_dist.exponential ~mean:0.02 () in
  let rng = Rng.create 6 in
  for _ = 1 to 5_000 do
    if Deadline_dist.sample d rng < 0.003 then Alcotest.fail "below 3ms floor"
  done

let test_deadline_mean () =
  let d = Deadline_dist.exponential ~mean:0.04 () in
  let rng = Rng.create 7 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Deadline_dist.sample d rng
  done;
  let m = !acc /. float_of_int n in
  (* Floor at 3ms pushes the mean slightly above 40ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean close to 40ms (got %.4f)" m)
    true
    (m > 0.038 && m < 0.046)

let hosts = Array.init 12 (fun i -> 100 + i)

let test_aggregation_pattern () =
  let pairs = Pattern.aggregation ~hosts ~receiver:105 ~flows:22 in
  Alcotest.(check int) "22 flows" 22 (List.length pairs);
  List.iter
    (fun (p : Pattern.pair) ->
      Alcotest.(check int) "all to receiver" 105 p.Pattern.dst;
      Alcotest.(check bool) "never self" true (p.Pattern.src <> 105))
    pairs;
  (* Footnote 6: flows spread evenly over the 11 senders. *)
  let count src =
    List.length (List.filter (fun (p : Pattern.pair) -> p.Pattern.src = src) pairs)
  in
  Array.iter
    (fun h ->
      if h <> 105 then
        Alcotest.(check bool) "two per sender" true (count h = 2))
    hosts

let test_stride_pattern () =
  let pairs = Pattern.stride ~hosts ~i:1 in
  Alcotest.(check int) "N flows" 12 (List.length pairs);
  let p0 = List.hd pairs in
  Alcotest.(check int) "x -> x+1" 101 p0.Pattern.dst

let test_staggered_pattern () =
  let rack_of h = (h - 100) / 3 in
  let rng = Rng.create 8 in
  let pairs = Pattern.staggered ~rack_of ~hosts ~p:1.0 ~rng in
  (* p = 1: always the same rack. *)
  List.iter
    (fun (p : Pattern.pair) ->
      Alcotest.(check bool) "same rack" true
        (rack_of p.Pattern.src = rack_of p.Pattern.dst && p.Pattern.src <> p.Pattern.dst))
    pairs;
  let rng = Rng.create 9 in
  let pairs = Pattern.staggered ~rack_of ~hosts ~p:0. ~rng in
  List.iter
    (fun (p : Pattern.pair) ->
      Alcotest.(check bool) "different rack" true
        (rack_of p.Pattern.src <> rack_of p.Pattern.dst))
    pairs

let test_permutation_pattern () =
  let rng = Rng.create 10 in
  let pairs = Pattern.random_permutation ~hosts ~rng in
  Alcotest.(check int) "N flows" 12 (List.length pairs);
  let dsts = List.map (fun (p : Pattern.pair) -> p.Pattern.dst) pairs in
  Alcotest.(check int) "each host receives exactly once" 12
    (List.length (List.sort_uniq compare dsts));
  List.iter
    (fun (p : Pattern.pair) ->
      Alcotest.(check bool) "no self-flow" true (p.Pattern.src <> p.Pattern.dst))
    pairs

let test_poisson_arrivals () =
  let rng = Rng.create 11 in
  let starts = Arrivals.poisson ~rng ~rate:1000. ~horizon:1. in
  let n = List.length starts in
  Alcotest.(check bool)
    (Printf.sprintf "~1000 arrivals (got %d)" n)
    true
    (n > 850 && n < 1150);
  let sorted = List.sort compare starts in
  Alcotest.(check bool) "increasing order" true (starts = sorted);
  List.iter
    (fun t -> if t < 0. || t >= 1. then Alcotest.fail "outside horizon")
    starts

let prop_pattern_no_self =
  QCheck.Test.make ~name:"random pairs never self-send" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, flows) ->
      QCheck.assume (flows > 0);
      let rng = Rng.create seed in
      let pairs = Pattern.random_pairs ~hosts ~flows ~rng in
      List.for_all (fun (p : Pattern.pair) -> p.Pattern.src <> p.Pattern.dst) pairs)

(* random_permutation is a derangement for any host count and seed:
   every host sends once, receives once, and never to itself. *)
let prop_permutation_derangement =
  QCheck.Test.make ~name:"random permutation is a derangement" ~count:200
    QCheck.(pair small_nat (int_range 2 40))
    (fun (seed, n) ->
      let hosts = Array.init n (fun i -> 100 + i) in
      let rng = Rng.create seed in
      let pairs = Pattern.random_permutation ~hosts ~rng in
      let srcs = List.map (fun (p : Pattern.pair) -> p.Pattern.src) pairs in
      let dsts = List.map (fun (p : Pattern.pair) -> p.Pattern.dst) pairs in
      let sorted_hosts = List.sort compare (Array.to_list hosts) in
      List.length pairs = n
      && List.sort compare srcs = sorted_hosts
      && List.sort compare dsts = sorted_hosts
      && List.for_all
           (fun (p : Pattern.pair) -> p.Pattern.src <> p.Pattern.dst)
           pairs)

(* Footnote 6: f flows over the n-1 senders split as uniformly as
   integers allow — every sender carries ⌊f/(n-1)⌋ or ⌈f/(n-1)⌉
   flows, and the counts sum to f. *)
let prop_aggregation_footnote6 =
  QCheck.Test.make ~name:"aggregation spreads flows per footnote 6" ~count:200
    QCheck.(pair (int_range 2 30) (int_range 1 200))
    (fun (n, flows) ->
      let hosts = Array.init n (fun i -> 100 + i) in
      let receiver = hosts.(0) in
      let pairs = Pattern.aggregation ~hosts ~receiver ~flows in
      let senders = n - 1 in
      let lo = flows / senders and hi = (flows + senders - 1) / senders in
      let counts = Hashtbl.create 16 in
      List.iter
        (fun (p : Pattern.pair) ->
          if p.Pattern.dst <> receiver || p.Pattern.src = receiver then
            QCheck.Test.fail_report "flow not sender->receiver";
          Hashtbl.replace counts p.Pattern.src
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Pattern.src)))
        pairs;
      let total = Hashtbl.fold (fun _ c acc -> c + acc) counts 0 in
      total = flows
      && Hashtbl.fold (fun _ c ok -> ok && c >= lo && c <= hi) counts true)

(* The rack-local fraction of staggered traffic tracks p. With 12
   hosts x 200 seeds = 2400 draws per p, an 0.08 tolerance sits at
   roughly 8 standard deviations — failures mean a real bias, not bad
   luck. *)
let prop_staggered_rack_local_fraction =
  QCheck.Test.make ~name:"staggered rack-local fraction tracks p" ~count:3
    QCheck.(oneofl [ 0.25; 0.5; 0.75 ])
    (fun p ->
      let rack_of h = (h - 100) / 3 in
      let local = ref 0 and total = ref 0 in
      for seed = 1 to 200 do
        let rng = Rng.create seed in
        List.iter
          (fun (pr : Pattern.pair) ->
            incr total;
            if rack_of pr.Pattern.src = rack_of pr.Pattern.dst then incr local)
          (Pattern.staggered ~rack_of ~hosts ~p ~rng)
      done;
      let fraction = float_of_int !local /. float_of_int !total in
      abs_float (fraction -. p) < 0.08)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "workload.sizes",
      [
        Alcotest.test_case "paper uniform" `Quick test_uniform_paper;
        Alcotest.test_case "pareto tail" `Quick test_pareto_tail;
        Alcotest.test_case "vl2 shape" `Quick test_vl2_shape;
        Alcotest.test_case "fixed" `Quick test_fixed;
      ] );
    ( "workload.deadlines",
      [
        Alcotest.test_case "3ms floor" `Quick test_deadline_floor;
        Alcotest.test_case "mean" `Quick test_deadline_mean;
      ] );
    ( "workload.patterns",
      [
        Alcotest.test_case "aggregation" `Quick test_aggregation_pattern;
        Alcotest.test_case "stride" `Quick test_stride_pattern;
        Alcotest.test_case "staggered" `Quick test_staggered_pattern;
        Alcotest.test_case "random permutation" `Quick test_permutation_pattern;
        Alcotest.test_case "poisson arrivals" `Quick test_poisson_arrivals;
      ]
      @ qsuite
          [
            prop_pattern_no_self;
            prop_permutation_derangement;
            prop_aggregation_footnote6;
            prop_staggered_rack_local_fraction;
          ] );
  ]
